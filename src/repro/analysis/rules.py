"""spmdlint rule catalog: table-driven SPMD correctness checks.

Every rule is a small checker function registered through the
:func:`rule` decorator; the engine (:mod:`repro.analysis.spmdlint`)
builds the per-function analysis context (communicator parameters,
rank-variance taint, replication taint, collective call sites) and hands
it to each checker.  Adding a rule is ~20 lines: write a generator that
yields ``(ast_node, message)`` pairs and decorate it.

Rule identifiers are grouped by family:

* ``SPMD0xx`` — collective-schedule safety (divergence, skipped
  collectives, tag matching);
* ``SPMD1xx`` — determinism (unordered iteration, unseeded RNG,
  ``id()``-derived ordering);
* ``SPMD2xx`` — payload hygiene (objects the payload model cannot
  size deterministically).

The full catalog with rationale lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

#: Severity levels, least to most severe.
SEVERITIES = ("info", "warning", "error")
SEVERITY_ORDER = {name: i for i, name in enumerate(SEVERITIES)}

#: Methods on a communicator object that are synchronizing collectives:
#: every rank must call them, in the same order (``runtime/comm.py``).
COLLECTIVE_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "scan",
        "exscan",
        "neighbor_alltoall",
        "exchange_roundtrip",
        "split",
    }
)

#: Library functions/methods documented as *collective* (they contain
#: collectives internally, so skipping them on a subset of ranks is the
#: same bug as skipping a bare collective).  This list is kept in exact
#: sync with the call graph's contains-collective closure over
#: ``src/repro`` — regenerate with ``repro-louvain lint src/
#: --dump-helpers``; rule SPMD005 reports drift in either direction.
COLLECTIVE_HELPERS = frozenset(
    {
        "_apply_community_deltas",
        "_community_placement",
        "_component_labels",
        "_exact_modularity",
        "_exchange_changed",
        "_fetch_community_info",
        "_labels_collide",
        "_load_restored_state",
        "_pull_and_subscribe",
        "_save_checkpoint",
        "_split_flags",
        "_sweep_round",
        "_vertex_following_targets",
        "audit_community_info",
        "audit_ghost_coherence",
        "audit_partition",
        "build_ghost_plan",
        "distributed_coloring",
        "distributed_components",
        "distributed_degree_histogram",
        "distributed_label_counts",
        "distributed_louvain",
        "distributed_num_components",
        "distributed_total_weight",
        "exchange_deltas",
        "exchange_ghost_values",
        "fetch",
        "load_binary",
        "load_latest",
        "louvain_phase_distributed",
        "merge_global",
        "publish",
        "rebuild_distributed",
        "refine_communities",
        "refresh",
        "remote_lookup",
        "save",
        "split_communicator",
        "verify_coloring",
    }
)

#: Collectives whose result is *replicated* on every rank, so names
#: assigned from them are safe to branch on in SPMD code.
REPLICATING_METHODS = frozenset({"allreduce", "bcast", "allgather"})

#: Point-to-point send-side / receive-side call names (tag matching).
SEND_METHODS = frozenset({"send", "isend"})
RECV_METHODS = frozenset({"recv", "irecv"})

#: Attributes whose value differs per rank by definition.
RANK_ATTRIBUTES = frozenset({"rank", "world_rank"})

#: Calls returning per-rank data (ownership lookups).
RANK_CALLS = frozenset({"owner_of", "owner"})

#: ``random``-module functions that draw from an unseeded global state.
UNSEEDED_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
    }
)

#: Payload shapes the wire-size model cannot charge deterministically
#: (see ``runtime/payload.py``): sets have no stable iteration order,
#: generators are consumed by the size estimate itself.
HAZARDOUS_PAYLOAD_CALLS = frozenset({"set", "frozenset", "iter"})


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    severity: str
    summary: str
    scope: str  # "function" | "module" | "program"
    check: Callable[..., Iterator[tuple[ast.AST, str]]]


#: Registry, populated by the :func:`rule` decorator at import time.
RULES: dict[str, Rule] = {}


def rule(rule_id: str, severity: str, summary: str, scope: str = "function"):
    """Register a checker under ``rule_id`` (table-driven extension point)."""
    if severity not in SEVERITY_ORDER:
        raise ValueError(f"unknown severity {severity!r}")

    def deco(fn):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(
            id=rule_id, severity=severity, summary=summary, scope=scope,
            check=fn,
        )
        return fn

    return deco


# ----------------------------------------------------------------------
# Shared AST predicates (pure functions over nodes; contexts supply the
# taint sets)
# ----------------------------------------------------------------------
_NESTED_SCOPES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
)


def walk_no_nested(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s children without entering nested function/class
    definitions (the caller is responsible for ``node`` itself)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _NESTED_SCOPES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def walk_stmt_subtree(stmt: ast.stmt) -> Iterator[ast.AST]:
    """``stmt`` plus its descendants, staying inside the current scope."""
    if isinstance(stmt, _NESTED_SCOPES):
        return
    yield stmt
    yield from walk_no_nested(stmt)


def _callable_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def collective_op(node: ast.AST, fn) -> str | None:
    """Op name if ``node`` is a collective call in function context ``fn``.

    Two forms count: a :data:`COLLECTIVE_METHODS` method on a
    communicator receiver, and a call to a :data:`COLLECTIVE_HELPERS`
    name that receives the communicator as an argument.
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in COLLECTIVE_METHODS:
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id in fn.comm_names:
            return func.attr
        if (
            isinstance(recv, ast.Attribute)
            and recv.attr in fn.comm_names
        ):  # self.comm / ctx.comm
            return func.attr
    name = _callable_name(func)
    if name in COLLECTIVE_HELPERS:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id in fn.comm_names:
                return name
        # Method form (obj.remote_lookup(...)) or comm passed indirectly.
        if isinstance(func, ast.Attribute):
            return name
    return None


def is_rank_variant(node: ast.AST, fn) -> bool:
    """True if the expression's value can differ across ranks *because it
    is derived from the rank id* (``comm.rank``, ``owner_of``, a name
    tainted by them, or a call to a function the call graph proved
    rank-returning — see ``callgraph.augment_rank_taint``)."""
    interproc = getattr(fn, "interproc_rank_calls", ())
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in RANK_ATTRIBUTES:
            return True
        if isinstance(sub, ast.Call):
            name = _callable_name(sub.func)
            if name in RANK_CALLS or name in interproc:
                return True
        if isinstance(sub, ast.Name) and sub.id in fn.rank_tainted:
            return True
    return False


def is_replicated_safe(node: ast.AST, fn) -> bool:
    """Conservatively true when every rank must see the same value:
    the expression contains a replicating collective call, or all its
    name leaves are known replicated."""
    for sub in ast.walk(node):
        if collective_op(sub, fn) in REPLICATING_METHODS:
            return True
    names = [s for s in ast.walk(node) if isinstance(s, ast.Name)]
    if not names:
        return False
    return all(n.id in fn.replicated for n in names)


def collect_collective_counts(stmts: Iterable[ast.stmt], fn) -> Counter:
    """Multiset of collective op names in a statement list (no nested defs)."""
    counts: Counter = Counter()
    for stmt in stmts:
        for sub in walk_stmt_subtree(stmt):
            op = collective_op(sub, fn)
            if op is not None:
                counts[op] += 1
    return counts


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _callable_name(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _iteration_targets(fn) -> Iterator[tuple[ast.AST, ast.AST]]:
    """(loop/comprehension node, iterated expression) pairs."""
    for node in walk_no_nested(fn.node):
        if isinstance(node, ast.For):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter


# ----------------------------------------------------------------------
# SPMD0xx — collective schedule safety
# ----------------------------------------------------------------------
@rule(
    "SPMD001",
    "error",
    "collective under rank-dependent control flow without a matching "
    "call on the other path",
)
def check_divergent_collective(fn) -> Iterator[tuple[ast.AST, str]]:
    for node in walk_no_nested(fn.node):
        if isinstance(node, ast.If) and is_rank_variant(node.test, fn):
            body = collect_collective_counts(node.body, fn)
            other = collect_collective_counts(node.orelse, fn)
            if body != other:
                missing = (body - other) + (other - body)
                ops = ", ".join(sorted(missing))
                yield node, (
                    f"collective(s) {ops} reachable only under a "
                    "rank-dependent condition; ranks taking the other "
                    "branch will not make the matching call (real MPI: "
                    "deadlock or corrupted collective)"
                )
        elif isinstance(node, (ast.For, ast.While)):
            header = node.iter if isinstance(node, ast.For) else node.test
            if is_rank_variant(header, fn):
                body = collect_collective_counts(node.body, fn)
                if body:
                    ops = ", ".join(sorted(body))
                    yield node, (
                        f"collective(s) {ops} inside a loop whose trip "
                        "count is rank-dependent; ranks will call them "
                        "a different number of times"
                    )


@rule(
    "SPMD002",
    "warning",
    "conditional early return may skip collectives on a subset of ranks",
)
def check_conditional_return(fn) -> Iterator[tuple[ast.AST, str]]:
    coll_lines = sorted(
        node.lineno
        for node in walk_no_nested(fn.node)
        if collective_op(node, fn) is not None
    )
    if not coll_lines:
        return
    for node in walk_no_nested(fn.node):
        if not isinstance(node, ast.If):
            continue
        if is_replicated_safe(node.test, fn):
            continue
        for branch in (node.body, node.orelse):
            for stmt in branch:
                for sub in walk_stmt_subtree(stmt):
                    if isinstance(sub, ast.Return) and any(
                        line > sub.lineno for line in coll_lines
                    ):
                        yield sub, (
                            "return under a condition not proven "
                            "replicated skips later collective call(s) "
                            f"(next at line {min(ln for ln in coll_lines if ln > sub.lineno)}); "
                            "if the condition is rank-local, ranks "
                            "diverge — make the decision collective "
                            "(e.g. allreduce a flag) or suppress with "
                            "a justification"
                        )


@rule(
    "SPMD003",
    "warning",
    "send/recv tag literal with no matching peer call",
    scope="program",
)
def check_tag_matching(program) -> Iterator[tuple[ast.AST, str]]:
    sends: list[tuple[object, ast.AST, int]] = []
    recvs: list[tuple[object, ast.AST, int]] = []

    def literal_tag(call: ast.Call, kw_names: tuple[str, ...], pos: int):
        for kw in call.keywords:
            if kw.arg in kw_names and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, int):
                    return kw.value.value
        if len(call.args) > pos and isinstance(call.args[pos], ast.Constant):
            v = call.args[pos].value
            if isinstance(v, int):
                return v
        return None

    for module in program.modules:
        for fn in module.functions:
            if not fn.is_spmd:
                continue
            for node in walk_no_nested(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _callable_name(node.func)
                if name in SEND_METHODS:
                    tag = literal_tag(node, ("tag",), 2)
                    if tag is not None:
                        sends.append((module, node, tag))
                elif name in RECV_METHODS:
                    tag = literal_tag(node, ("tag",), 1)
                    if tag is not None:
                        recvs.append((module, node, tag))
                elif name == "sendrecv":
                    stag = literal_tag(node, ("sendtag",), 3)
                    rtag = literal_tag(node, ("recvtag",), 4)
                    if stag is not None:
                        sends.append((module, node, stag))
                    if rtag is not None:
                        recvs.append((module, node, rtag))

    send_tags = {t for _, _, t in sends}
    recv_tags = {t for _, _, t in recvs}
    for module, node, tag in sends:
        if tag not in recv_tags:
            yield module, node, (
                f"send with tag {tag} has no recv using that tag "
                "anywhere in the linted code — the message can never "
                "be matched (receiver times out)"
            )
    for module, node, tag in recvs:
        if tag not in send_tags:
            yield module, node, (
                f"recv with tag {tag} has no send using that tag "
                "anywhere in the linted code — the receive blocks "
                "until the deadlock timeout"
            )


@rule(
    "SPMD004",
    "error",
    "whole-program schedule divergence: rank-variant control flow "
    "changes the collective footprint of an inlined callee",
    scope="program",
)
def check_interprocedural_divergence(program) -> Iterator:
    """Footprint-summary counterpart of SPMD001 (see summaries.py).

    Scans every SPMD function's collective-footprint summary for
    rank-variant alternations/loops whose branches execute different
    collective schedules — including collectives that live in callees
    SPMD001's per-function view cannot see (local helpers, nested
    closures, functions outside ``COLLECTIVE_HELPERS``).  Nodes the
    intraprocedural SPMD001 already reports are skipped so each
    divergence surfaces exactly once.
    """
    builder = getattr(program, "analysis", None)
    if builder is None:
        return
    from .summaries import divergences

    for module in program.modules:
        for fn in module.functions:
            if not fn.is_spmd:
                continue
            local = {
                id(node) for node, _ in check_divergent_collective(fn)
            }
            seen: set[int] = set()
            for d in divergences(builder.summary(fn)):
                if d.owner is not fn:
                    continue  # reported at the defining function
                nid = id(d.node)
                if nid in local or nid in seen:
                    continue
                seen.add(nid)
                yield module, d.node, (
                    d.describe()
                    + "; ranks disagreeing on the condition execute "
                    "different collective schedules (real MPI: deadlock "
                    "or corrupted collective)"
                )


def _literal_str_collection(node: ast.AST) -> frozenset[str] | None:
    """Strings of a ``frozenset({...})`` / ``{...}`` / tuple/list literal."""
    if isinstance(node, ast.Call) and _callable_name(node.func) in (
        "frozenset",
        "set",
    ):
        if len(node.args) != 1 or node.keywords:
            return None
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        out = set()
        for elt in node.elts:
            if not (
                isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ):
                return None
            out.add(elt.value)
        return frozenset(out)
    return None


def _literal_str_dict(node: ast.AST) -> dict[str, str] | None:
    """Keys/values of a ``{"k": "v", ...}`` literal (dict() not handled)."""
    if isinstance(node, ast.Call) and _callable_name(node.func) == "dict":
        node = ast.Dict(
            keys=[ast.Constant(kw.arg) for kw in node.keywords],
            values=list(kw.value for kw in node.keywords),
        )
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, str] = {}
    for k, v in zip(node.keys, node.values):
        if not (
            isinstance(k, ast.Constant)
            and isinstance(k.value, str)
            and isinstance(v, ast.Constant)
            and isinstance(v.value, str)
        ):
            return None
        out[k.value] = v.value
    return out


def _module_assignment(
    tree: ast.Module, name: str
) -> tuple[ast.stmt, ast.expr] | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and t.id == name:
                    return stmt, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt, stmt.value
    return None


@rule(
    "SPMD005",
    "warning",
    "COLLECTIVE_HELPERS catalog drifted from the derived "
    "contains-collective closure (regenerate with lint --dump-helpers)",
    scope="program",
)
def check_helper_catalog_drift(program) -> Iterator:
    """Diffs the hand-maintained catalog against the call graph.

    The declared set is read from the ``COLLECTIVE_HELPERS =
    frozenset({...})`` literal of any linted module; the derived set is
    the transitive contains-collective closure restricted to the
    declaring module's package subtree (so linting ``tests/`` alongside
    ``src/`` never reports test workers as "missing").  The comparison
    is skipped when the package subtree is only partially linted.
    """
    cg = getattr(program, "callgraph", None)
    if cg is None:
        return
    from .callgraph import package_root

    linted = {m.path.resolve() for m in program.modules}
    for module in program.modules:
        found = _module_assignment(module.tree, "COLLECTIVE_HELPERS")
        if found is None:
            continue
        node, value = found
        declared = _literal_str_collection(value)
        if declared is None:
            continue
        root = package_root(module.path)
        if root is not None:
            expected = {
                p.resolve()
                for p in root.rglob("*.py")
                if "__pycache__" not in p.parts
            }
            if not expected <= linted:
                continue  # partial lint of the package: cannot judge
            derived = cg.derive_collective_helpers(root)
        else:
            derived = cg.derive_collective_helpers(
                scope_modules=frozenset({id(module)})
            )
        stale = sorted(declared - derived)
        missing = sorted(derived - declared)
        if stale:
            yield module, node, (
                "stale COLLECTIVE_HELPERS entr"
                + ("y" if len(stale) == 1 else "ies")
                + " (no linted SPMD definition contains a collective): "
                + ", ".join(stale)
            )
        if missing:
            yield module, node, (
                "collective-containing SPMD function"
                + ("" if len(missing) == 1 else "s")
                + " missing from COLLECTIVE_HELPERS: "
                + ", ".join(missing)
            )


# ----------------------------------------------------------------------
# SPMD1xx — determinism
# ----------------------------------------------------------------------
@rule(
    "SPMD101",
    "error",
    "iteration over a set has no deterministic order",
)
def check_set_iteration(fn) -> Iterator[tuple[ast.AST, str]]:
    for node, it in _iteration_targets(fn):
        if _is_set_expression(it):
            yield node, (
                "iterating a set/frozenset: element order is not "
                "deterministic across processes; wrap in sorted(...) "
                "(membership tests on sets are fine)"
            )


@rule(
    "SPMD102",
    "error",
    "unseeded random number generator in SPMD code",
    scope="module",
)
def check_unseeded_rng(module) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # np.random.default_rng() with no seed argument.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and not node.args
            and not node.keywords
        ):
            yield node, (
                "np.random.default_rng() without a seed draws OS "
                "entropy — results differ between runs and ranks; "
                "pass a seed (see core.heuristics.make_rank_rng)"
            )
        # Legacy numpy global-state API (np.random.rand etc.).
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
            and func.attr not in ("default_rng", "SeedSequence", "Generator")
        ):
            yield node, (
                f"np.random.{func.attr} uses the unseeded global "
                "RandomState; use a seeded np.random.default_rng(seed)"
            )
        # Stdlib random module-level functions (shared hidden state).
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr in UNSEEDED_RANDOM_FUNCS
        ):
            yield node, (
                f"random.{func.attr} draws from the process-global "
                "generator; use random.Random(seed) or a seeded numpy "
                "Generator"
            )


@rule(
    "SPMD103",
    "error",
    "ordering or keying derived from id() is address-dependent",
    scope="module",
)
def check_id_ordering(module) -> Iterator[tuple[ast.AST, str]]:
    def uses_id(expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id == "id":
                return True
        return False

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = _callable_name(node.func)
            if name in ("sorted", "min", "max", "sort"):
                for kw in node.keywords:
                    if kw.arg == "key" and uses_id(kw.value):
                        yield node, (
                            "sort key derived from id(): CPython object "
                            "addresses vary run to run, so the order is "
                            "not reproducible"
                        )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and isinstance(key, ast.Call) and \
                        _callable_name(key.func) == "id":
                    yield node, (
                        "dict keyed by id(): the keying (and any "
                        "iteration over it) is address-dependent and "
                        "not reproducible"
                    )


@rule(
    "SPMD104",
    "info",
    "dict-ordered iteration in SPMD code (order is insertion order — "
    "verify it is rank-invariant, or iterate sorted(...))",
)
def check_dict_iteration(fn) -> Iterator[tuple[ast.AST, str]]:
    for node, it in _iteration_targets(fn):
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("items", "keys", "values")
            and not it.args
        ):
            yield node, (
                f"iteration over .{it.func.attr}() follows dict "
                "insertion order; if ranks populate the dict in "
                "different orders and the loop feeds a payload or "
                "accumulation, results diverge — iterate "
                "sorted(...) to pin the order"
            )


# ----------------------------------------------------------------------
# SPMD2xx — payload hygiene
# ----------------------------------------------------------------------
#: Comm calls whose first argument is the outgoing payload.
PAYLOAD_ARG0_METHODS = frozenset(
    {
        "send",
        "isend",
        "sendrecv",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "scan",
        "exscan",
        "neighbor_alltoall",
        "exchange_roundtrip",
    }
)


@rule(
    "SPMD201",
    "error",
    "communication payload has no registered deterministic wire size",
)
def check_payload_hazard(fn) -> Iterator[tuple[ast.AST, str]]:
    for node in walk_no_nested(fn.node):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in PAYLOAD_ARG0_METHODS
            and (
                (isinstance(func.value, ast.Name)
                 and func.value.id in fn.comm_names)
                or (isinstance(func.value, ast.Attribute)
                    and func.value.attr in fn.comm_names)
            )
        ):
            continue
        payload = node.args[0]
        if isinstance(payload, (ast.Set, ast.SetComp)) or (
            isinstance(payload, ast.Call)
            and _callable_name(payload.func) in HAZARDOUS_PAYLOAD_CALLS
        ):
            yield payload, (
                "sending a set: iteration order (and therefore the "
                "packed wire image) is nondeterministic; send a sorted "
                "array/list, or register a sizer via "
                "runtime.payload.register_payload_type"
            )
        elif isinstance(payload, ast.GeneratorExp):
            yield payload, (
                "sending a generator: the payload size estimate "
                "consumes it and the receiver sees an exhausted "
                "iterator; materialise a list/array first"
            )


# ----------------------------------------------------------------------
# SPMD3xx — config / cache-key drift
# ----------------------------------------------------------------------

#: Exclusion kinds in ``CACHE_KEY_EXCLUSIONS`` whose fields may
#: legitimately guard collectives while staying outside ``cache_key()``:
#: *transport* knobs change how data moves (extra/alternative
#: collectives) without changing what is computed; *audit* knobs add
#: verification collectives that every rank executes identically.
SCHEDULE_SAFE_EXCLUSION_KINDS = frozenset({"transport", "audit"})


def _dataclass_def(
    tree: ast.Module, name: str = "LouvainConfig"
) -> ast.ClassDef | None:
    for stmt in tree.body:
        if not (isinstance(stmt, ast.ClassDef) and stmt.name == name):
            continue
        for dec in stmt.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if _callable_name(target) == "dataclass":
                return stmt
    return None


def _dataclass_fields(cls: ast.ClassDef) -> list[str]:
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if "ClassVar" in ast.unparse(stmt.annotation):
                continue
            fields.append(stmt.target.id)
    return fields


def _config_attr_surface(cls: ast.ClassDef) -> frozenset[str]:
    """Attribute names a config instance legitimately exposes."""
    names = set(_dataclass_fields(cls))
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
    return frozenset(names)


def _louvain_config_params(fn_node: ast.AST) -> frozenset[str]:
    """Parameters annotated as ``LouvainConfig`` (incl. Optional[...])."""
    args = fn_node.args
    out = set()
    for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if a.annotation is not None and "LouvainConfig" in ast.unparse(
            a.annotation
        ):
            out.add(a.arg)
    return frozenset(out)


@rule(
    "SPMD301",
    "error",
    "LouvainConfig field partition drift: every field must be in "
    "CACHE_KEY_FIELDS or documented in CACHE_KEY_EXCLUSIONS",
    scope="program",
)
def check_cache_key_partition(program) -> Iterator:
    """Field-partition invariant on the config declaration itself.

    ``CACHE_KEY_FIELDS`` (what :meth:`LouvainConfig.cache_key` hashes)
    and ``CACHE_KEY_EXCLUSIONS`` (documented reasons for leaving a
    field out) must partition the dataclass fields exactly: no
    undocumented field, no overlap, no stale names on either side, and
    every exclusion reason tagged ``"<kind>: ..."``.
    """
    for module in program.modules:
        cls = _dataclass_def(module.tree)
        if cls is None:
            continue
        found = _module_assignment(module.tree, "CACHE_KEY_FIELDS")
        if found is None:
            continue
        key_node, key_value = found
        key_fields = _literal_str_collection(key_value)
        if key_fields is None:
            continue
        excl_node: ast.stmt = key_node
        exclusions: dict[str, str] = {}
        excl_found = _module_assignment(module.tree, "CACHE_KEY_EXCLUSIONS")
        if excl_found is not None:
            excl_node = excl_found[0]
            exclusions = _literal_str_dict(excl_found[1]) or {}
        fields = set(_dataclass_fields(cls))
        for f in sorted(fields - key_fields - set(exclusions)):
            yield module, key_node, (
                f"config field '{f}' is neither in CACHE_KEY_FIELDS nor "
                "documented in CACHE_KEY_EXCLUSIONS; undocumented fields "
                "silently escape the autotuner's cache key"
            )
        for f in sorted(key_fields & set(exclusions)):
            yield module, excl_node, (
                f"config field '{f}' appears in both CACHE_KEY_FIELDS "
                "and CACHE_KEY_EXCLUSIONS"
            )
        for f in sorted(key_fields - fields):
            yield module, key_node, (
                f"CACHE_KEY_FIELDS names '{f}', which is not a "
                "LouvainConfig field"
            )
        for f in sorted(set(exclusions) - fields):
            yield module, excl_node, (
                f"CACHE_KEY_EXCLUSIONS names '{f}', which is not a "
                "LouvainConfig field"
            )
        for f in sorted(exclusions):
            reason = exclusions[f]
            kind = reason.split(":", 1)[0].strip() if ":" in reason else ""
            if not kind:
                yield module, excl_node, (
                    f"CACHE_KEY_EXCLUSIONS['{f}'] reason must start with "
                    "'<kind>: ' (e.g. 'transport: bit-identical results')"
                )


@rule(
    "SPMD302",
    "error",
    "config field guards the collective schedule but is excluded from "
    "cache_key() without a schedule-safe exclusion kind",
    scope="program",
)
def check_collective_guard_coverage(program) -> Iterator:
    """Cross-checks footprint summaries against the cache-key partition.

    A config field whose value selects between different collective
    schedules (a config-``Alt`` with differing options in some SPMD
    function's footprint) must either participate in ``cache_key()``
    or carry an exclusion of a kind in
    :data:`SCHEDULE_SAFE_EXCLUSION_KINDS`.
    """
    builder = getattr(program, "analysis", None)
    if builder is None:
        return
    from .summaries import schedule_guarding_fields

    guarding: dict[str, str] = {}
    for m in program.modules:
        for fn in m.functions:
            if not fn.is_spmd:
                continue
            for f in sorted(schedule_guarding_fields(builder.summary(fn))):
                guarding.setdefault(f, fn.qualname)
    if not guarding:
        return
    for module in program.modules:
        cls = _dataclass_def(module.tree)
        if cls is None:
            continue
        found = _module_assignment(module.tree, "CACHE_KEY_FIELDS")
        if found is None:
            continue
        key_node, key_value = found
        key_fields = _literal_str_collection(key_value) or frozenset()
        exclusions: dict[str, str] = {}
        excl_found = _module_assignment(module.tree, "CACHE_KEY_EXCLUSIONS")
        if excl_found is not None:
            exclusions = _literal_str_dict(excl_found[1]) or {}
        fields = set(_dataclass_fields(cls))
        for f in sorted(guarding):
            if f not in fields or f in key_fields:
                continue
            reason = exclusions.get(f)
            if reason is None:
                continue  # SPMD301 already reports undocumented fields
            kind = reason.split(":", 1)[0].strip()
            if kind not in SCHEDULE_SAFE_EXCLUSION_KINDS:
                yield module, key_node, (
                    f"config field '{f}' guards the collective schedule "
                    f"(see {guarding[f]}) but is excluded from "
                    f"cache_key() with kind '{kind}'; only "
                    f"{sorted(SCHEDULE_SAFE_EXCLUSION_KINDS)} exclusions "
                    "may guard collectives"
                )


@rule(
    "SPMD303",
    "error",
    "unknown LouvainConfig attribute read: typoed fields drift "
    "silently out of the schedule analysis",
    scope="program",
)
def check_config_attr_reads(program) -> Iterator:
    """Validates ``config.<attr>`` reads against the declared surface.

    Only parameters *annotated* ``LouvainConfig`` are checked, so
    unrelated ``config`` objects (service/serving configs) are never
    flagged.  Private/dunder attributes are skipped.
    """
    surface: frozenset[str] | None = None
    for module in program.modules:
        cls = _dataclass_def(module.tree)
        if cls is not None:
            s = _config_attr_surface(cls)
            surface = s if surface is None else (surface | s)
    if surface is None:
        return
    for module in program.modules:
        for fn in module.functions:
            cfg_params = _louvain_config_params(fn.node)
            if not cfg_params:
                continue
            for node in walk_no_nested(fn.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in cfg_params
                    and not node.attr.startswith("_")
                    and node.attr not in surface
                ):
                    yield module, node, (
                        f"'{node.value.id}.{node.attr}' is not a "
                        "LouvainConfig field, property, or method"
                    )
