"""Unit tests for the LFR benchmark generator."""

import numpy as np
import pytest

from repro.core import louvain
from repro.generators import generate_lfr
from repro.quality import best_match_scores


class TestGenerateLFR:
    def test_all_vertices_assigned(self):
        g = generate_lfr(400, seed=0)
        assert len(g.community_of) == 400
        assert g.community_of.min() >= 0

    def test_mixing_parameter_approximated(self):
        for mu in (0.1, 0.3, 0.5):
            g = generate_lfr(800, mu=mu, seed=1)
            assert abs(g.mu_realized - mu) < 0.08, (mu, g.mu_realized)

    def test_community_sizes_bounded(self):
        g = generate_lfr(600, min_community=10, max_community=40, seed=2)
        sizes = np.bincount(g.community_of)
        sizes = sizes[sizes > 0]
        assert sizes.max() <= 40 + 40  # tail absorption may exceed max once
        assert np.median(sizes) >= 10

    def test_degrees_bounded(self):
        g = generate_lfr(500, max_degree=30, seed=3)
        degs = g.edges.to_csr().edge_counts()
        # Configuration-model collisions only remove edges.
        assert degs.max() <= 30

    def test_low_mu_louvain_recovers_ground_truth(self):
        # Larger communities sidestep the resolution limit at this scale.
        g = generate_lfr(600, mu=0.1, min_community=25, max_community=60,
                         seed=4)
        r = louvain(g.edges.to_csr())
        scores = best_match_scores(g.community_of, r.assignment)
        assert scores.fscore > 0.9
        assert scores.recall == 1.0  # the Table VII pattern

    def test_small_communities_merge_but_recall_stays_one(self):
        # At small scale Louvain's resolution limit merges ground-truth
        # communities: recall 1.0, precision < 1 (paper Table VII shape).
        g = generate_lfr(500, mu=0.1, seed=4)
        r = louvain(g.edges.to_csr())
        scores = best_match_scores(g.community_of, r.assignment)
        assert scores.recall == 1.0
        assert 0.6 < scores.precision <= 1.0

    def test_higher_mu_lowers_modularity(self):
        lo = generate_lfr(600, mu=0.1, seed=5)
        hi = generate_lfr(600, mu=0.5, seed=5)
        q_lo = louvain(lo.edges.to_csr()).modularity
        q_hi = louvain(hi.edges.to_csr()).modularity
        assert q_lo > q_hi

    def test_deterministic(self):
        a = generate_lfr(300, seed=9)
        b = generate_lfr(300, seed=9)
        np.testing.assert_array_equal(a.edges.u, b.edges.u)
        np.testing.assert_array_equal(a.community_of, b.community_of)

    def test_num_communities_reported(self):
        g = generate_lfr(400, seed=10)
        assert g.num_communities == len(np.unique(g.community_of))

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_lfr(5, min_community=10)
        with pytest.raises(ValueError):
            generate_lfr(100, mu=1.5)
