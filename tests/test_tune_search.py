"""Unit tests for cost-model screening + successive-halving search."""

import pytest

from repro.core import LouvainConfig
from repro.generators import make_graph
from repro.runtime import CORI_HASWELL
from repro.tune import (
    Candidate,
    SearchSpace,
    TunerSettings,
    TuningDB,
    plan_for_graph,
    predict_cost,
    screen,
    tune_graph,
)


@pytest.fixture(scope="module")
def channel():
    return make_graph("channel", scale="tiny", seed=0)


SMALL_SPACE = SearchSpace(
    variants=("baseline", "et", "et+tc"),
    alphas=(0.25, 0.5),
    threshold_cycles=("paper",),
    rank_counts=(1, 2, 4),
    community_push=(False,),
    ghost_delta=(False,),
)

FAST = TunerSettings(trials=4, rung_phase_caps=(1,))


class TestCostModel:
    def test_predictions_positive_and_finite(self, channel):
        from repro.tune import compute_features

        f = compute_features(channel)
        for cand in SMALL_SPACE.candidates(seed=0)[:8]:
            est = predict_cost(f, cand, CORI_HASWELL)
            assert est.seconds > 0
            assert est.breakdown
            assert sum(est.breakdown.values()) == pytest.approx(est.seconds)

    def test_screen_sorted_and_deterministic(self, channel):
        from repro.tune import compute_features

        f = compute_features(channel)
        cands = SMALL_SPACE.candidates(seed=0)
        a = screen(f, cands, CORI_HASWELL)
        b = screen(f, cands, CORI_HASWELL)
        assert [c.key() for _, c in a] == [c.key() for _, c in b]
        times = [s for s, _ in a]
        assert times == sorted(times)

    def test_single_rank_has_no_comm_cost(self, channel):
        from repro.tune import compute_features

        f = compute_features(channel)
        est = predict_cost(
            f, Candidate(config=LouvainConfig(), ranks=1), CORI_HASWELL
        )
        assert est.breakdown.get("ghost_comm", 0.0) == 0.0
        assert est.breakdown.get("community_comm", 0.0) == 0.0


class TestDeterminism:
    def test_same_seed_same_plan_and_schedule(self, channel):
        a = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        b = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        assert a.record.config == b.record.config
        assert a.record.ranks == b.record.ranks
        assert a.record.schedule == b.record.schedule
        assert a.record.trials == b.record.trials
        assert a.record.measured_seconds == b.record.measured_seconds

    def test_schedule_lists_every_trial(self, channel):
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        assert len(report.record.schedule) == len(report.trials)
        for entry, trial in zip(report.record.schedule, report.trials):
            assert entry["candidate"] == trial.candidate.key()
            assert entry["rung"] == trial.rung
            assert entry["max_phases"] == trial.max_phases


class TestSearch:
    def test_screening_caps_measured_candidates(self, channel):
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        assert report.candidates_screened <= FAST.trials
        assert report.candidates_total == len(SMALL_SPACE.candidates(seed=0))

    def test_baseline_always_measured(self, channel):
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        assert report.trials[0].rung == -1
        assert report.trials[0].max_phases is None

    def test_trials_run_collective_safe(self, channel):
        # The schedule verifier raises on any rank divergence in the
        # collective sequence; a clean pass is the assertion.
        settings = TunerSettings(
            trials=3, rung_phase_caps=(1,), verify_schedule=True
        )
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=settings)
        assert report.record.quality_guard_passed

    def test_budget_cuts_are_deterministic(self, channel):
        settings = TunerSettings(
            trials=4, rung_phase_caps=(1,), budget_seconds=1e-9
        )
        a = plan_for_graph(channel, space=SMALL_SPACE, settings=settings)
        b = plan_for_graph(channel, space=SMALL_SPACE, settings=settings)
        assert a.record.schedule == b.record.schedule
        # The baseline always runs; the budget chokes everything else to
        # at most one measured candidate per rung.
        assert len(a.trials) < 2 + 2 * FAST.trials

    def test_guard_rejection_falls_back_to_baseline(self, channel):
        # A negative tolerance puts the floor *above* the baseline's own
        # modularity, so no finalist (nor the baseline itself) can pass:
        # the plan must fall back to the paper-default baseline.
        settings = TunerSettings(
            trials=3, rung_phase_caps=(1,), quality_tolerance=-1.0
        )
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=settings)
        rec = report.record
        assert not rec.quality_guard_passed
        assert rec.config.variant == LouvainConfig().variant
        assert rec.ranks == settings.baseline_ranks
        assert rec.tuned_modularity == rec.baseline_modularity
        assert any("falling back" in n for n in report.notes)

    def test_quality_guard_holds_on_default_settings(self, channel):
        rec = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST).record
        assert rec.tuned_modularity >= (
            rec.baseline_modularity - rec.quality_tolerance - 1e-12
        )


class TestTuneGraph:
    def test_miss_searches_then_hit_skips_trials(self, channel):
        db = TuningDB()
        rec, cached = tune_graph(
            channel, db, space=SMALL_SPACE, settings=FAST
        )
        assert not cached
        again, cached2 = tune_graph(
            channel, db, space=SMALL_SPACE, settings=FAST
        )
        assert cached2
        # A DB hit stamps last_used (for LRU GC), so identity is not
        # preserved — the plan itself must be.
        assert again.fingerprint == rec.fingerprint
        assert again.config == rec.config
        assert again.ranks == rec.ranks
        assert again.last_used > 0

    def test_force_reruns(self, channel):
        db = TuningDB()
        tune_graph(channel, db, space=SMALL_SPACE, settings=FAST)
        _, cached = tune_graph(
            channel, db, space=SMALL_SPACE, settings=FAST, force=True
        )
        assert not cached

    def test_persists_through_db(self, channel, tmp_path):
        path = tmp_path / "db.json"
        tune_graph(
            channel, TuningDB(path), space=SMALL_SPACE, settings=FAST
        )
        rec, cached = tune_graph(
            channel, TuningDB(path), space=SMALL_SPACE, settings=FAST
        )
        assert cached
        assert rec.fingerprint == channel.fingerprint()

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            TunerSettings(trials=0)
        with pytest.raises(ValueError):
            TunerSettings(eta=1)
        with pytest.raises(ValueError):
            TunerSettings(budget_seconds=0.0)
        with pytest.raises(ValueError):
            TunerSettings(baseline_ranks=0)


class TestHeuristicCostTerms:
    def test_vertex_following_discount_scales_with_leaves(self):
        from repro.tune import GraphFeatures

        # Leaf-heavy graph, big enough that per-phase savings dominate
        # the one-time pre-coarsening rebuild.
        feats = GraphFeatures(
            num_vertices=100_000,
            num_edges=800_000,
            mean_degree=16.0,
            degree_cv=1.2,
            degree_skew=2.0,
            max_degree_fraction=0.01,
            ghost_fraction={2: 0.2, 4: 0.35, 8: 0.45},
            degree_one_fraction=0.4,
        )
        base = Candidate(config=LouvainConfig(), ranks=4)
        vf = Candidate(
            config=LouvainConfig(vertex_following=True), ranks=4
        )
        plain = predict_cost(feats, base, CORI_HASWELL)
        merged = predict_cost(feats, vf, CORI_HASWELL)
        assert merged.seconds < plain.seconds
        assert merged.breakdown["rebuild"] > plain.breakdown["rebuild"]
        # The input read is unaffected: the file is the same size.
        assert merged.breakdown["io"] == plain.breakdown["io"]

    def test_refine_charges_its_own_breakdown_key(self, channel):
        from repro.tune import compute_features

        feats = compute_features(channel)
        plain = predict_cost(
            feats, Candidate(config=LouvainConfig(), ranks=4), CORI_HASWELL
        )
        refined = predict_cost(
            feats,
            Candidate(config=LouvainConfig(refine="leiden"), ranks=4),
            CORI_HASWELL,
        )
        assert plain.breakdown["refine"] == 0.0
        assert refined.breakdown["refine"] > 0.0
        assert refined.seconds > plain.seconds

    def test_coloring_never_predicted_cheaper(self, channel):
        # Coloring buys modularity, never time: the measured simulator
        # runs colored sweeps 1.5-4x slower even at one rank, so the
        # model must rank coloring strictly more expensive at every
        # rank count — a mis-signed discount here floods the screening
        # cohort with colored candidates that lose every measured rung.
        from repro.tune import compute_features

        feats = compute_features(channel)
        for p in (1, 4, 8):
            plain = predict_cost(
                feats, Candidate(config=LouvainConfig(), ranks=p),
                CORI_HASWELL,
            )
            colored = predict_cost(
                feats,
                Candidate(config=LouvainConfig(use_coloring=True), ranks=p),
                CORI_HASWELL,
            )
            assert colored.seconds > plain.seconds
            # Per-color sweep rounds cost compute even without comm.
            assert colored.breakdown["compute"] > plain.breakdown["compute"]
            if p > 1:
                assert (
                    colored.breakdown["ghost_comm"]
                    > plain.breakdown["ghost_comm"]
                )


class TestParetoFrontier:
    def test_frontier_shape_and_order(self, channel):
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        frontier = report.record.frontier
        assert len(frontier) >= 1
        elapsed = [pt["elapsed"] for pt in frontier]
        quality = [pt["modularity"] for pt in frontier]
        assert elapsed == sorted(elapsed)
        # Strictly increasing modularity: no dominated point survives.
        assert all(b > a for a, b in zip(quality, quality[1:]))

    def test_frontier_contains_best_quality_run(self, channel):
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        full = [t for t in report.trials if t.max_phases is None]
        best_q = max(t.modularity for t in full)
        assert report.record.frontier[-1]["modularity"] == best_q

    def test_frontier_round_trips_through_db(self, channel, tmp_path):
        db = TuningDB(str(tmp_path / "db.json"))
        record, cached = tune_graph(
            channel, db, space=SMALL_SPACE, settings=FAST
        )
        assert not cached
        reloaded = TuningDB(str(tmp_path / "db.json")).get(record.fingerprint)
        assert reloaded.frontier == record.frontier

    def test_pre_frontier_records_load_empty(self):
        from repro.tune.db import TuningRecord

        record = plan_for_graph(
            make_graph("channel", scale="tiny", seed=0),
            space=SMALL_SPACE,
            settings=FAST,
        ).record
        legacy = record.to_dict()
        del legacy["frontier"]
        assert TuningRecord.from_dict(legacy).frontier == ()

    def test_format_lists_frontier(self, channel):
        report = plan_for_graph(channel, space=SMALL_SPACE, settings=FAST)
        assert "pareto frontier" in report.format()
