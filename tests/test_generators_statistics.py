"""Statistical validation of the generators' distributional claims.

The dataset registry's substitution argument (DESIGN.md §2) rests on
stand-ins preserving *structure class*: degree skew, community strength,
diameter class.  These tests pin the statistics down quantitatively.
"""

import numpy as np

from repro.generators import (
    generate_grid3d,
    generate_lfr,
    generate_rmat,
    generate_smallworld,
    generate_ssca2,
    generate_webgraph,
)
from repro.graph.metrics import graph_stats


def loglog_slope(degrees: np.ndarray) -> float:
    """Least-squares slope of the log-log degree CCDF (tail exponent)."""
    degrees = degrees[degrees > 0]
    values, counts = np.unique(degrees, return_counts=True)
    ccdf = 1.0 - np.cumsum(counts) / counts.sum()
    keep = ccdf > 0
    x = np.log(values[keep].astype(float))
    y = np.log(ccdf[keep])
    if len(x) < 3:
        return 0.0
    slope = np.polyfit(x, y, 1)[0]
    return float(slope)


class TestRMATStatistics:
    def test_heavy_tail_slope(self):
        el = generate_rmat(11, edge_factor=16, seed=0)
        slope = loglog_slope(el.to_csr().edge_counts())
        # Power-law-ish tail: CCDF slope clearly negative and shallow
        # compared to an exponential decay.
        assert -3.0 < slope < -0.5

    def test_flat_quadrants_lose_the_tail(self):
        skew = generate_rmat(10, a=0.7, b=0.1, c=0.1, seed=1)
        flat = generate_rmat(10, a=0.25, b=0.25, c=0.25, seed=1)
        assert (
            graph_stats(skew.to_csr()).degree_cv
            > 2 * graph_stats(flat.to_csr()).degree_cv
        )


class TestLFRStatistics:
    def test_degree_mean_near_target(self):
        g = generate_lfr(1500, avg_degree=16.0, max_degree=60, seed=2)
        # Weighted degree is what the configuration model conserves
        # (duplicate stub pairings merge into weighted edges).
        mean_weighted = g.edges.to_csr().degrees().mean()
        assert 13.0 < mean_weighted <= 17.0

    def test_community_size_powerlaw_ordering(self):
        g = generate_lfr(
            2000, tau2=1.2, min_community=10, max_community=80, seed=3
        )
        sizes = np.bincount(g.community_of)
        sizes = sizes[sizes > 0]
        # Power-law sizes: many small, few large.
        median = np.median(sizes)
        assert sizes.max() > 2 * median

    def test_mixing_sweep_monotone(self):
        realized = []
        for mu in (0.1, 0.2, 0.4):
            g = generate_lfr(800, mu=mu, seed=4)
            realized.append(g.mu_realized)
        assert realized[0] < realized[1] < realized[2]


class TestSSCA2Statistics:
    def test_clique_size_distribution_uniformish(self):
        g = generate_ssca2(5000, max_clique_size=20, seed=5)
        sizes = np.bincount(g.clique_of)
        # Uniform draws in [1, 20]: mean ~10.5, all values present.
        assert 8.0 < sizes.mean() < 13.0
        assert sizes.min() >= 1
        assert sizes.max() <= 20

    def test_intra_edges_dominate(self):
        g = generate_ssca2(1000, 15, inter_clique_fraction=0.01, seed=6)
        cut = g.clique_of[g.edges.u] != g.clique_of[g.edges.v]
        assert cut.mean() < 0.02


class TestWebGraphStatistics:
    def test_host_size_tail(self):
        g = generate_webgraph(3000, mean_host_size=25, seed=7)
        sizes = np.bincount(g.host_of)
        assert sizes.max() >= 3 * np.median(sizes)

    def test_low_cut_fraction_like_crawls(self):
        g = generate_webgraph(1500, inter_fraction=0.01, seed=8)
        cut = g.host_of[g.edges.u] != g.host_of[g.edges.v]
        assert cut.mean() < 0.03


class TestSmallWorldStatistics:
    def test_high_clustering_vs_random(self):
        # Small-world signature: clustering far above a degree-matched
        # random graph.  Count triangles via the adjacency structure.
        def clustering(el):
            g = el.to_csr()
            tri = 0
            wedges = 0
            adj = [set(map(int, g.neighbors(u)[0])) for u in
                   range(g.num_vertices)]
            for u in range(g.num_vertices):
                nbrs = [v for v in adj[u] if v != u]
                wedges += len(nbrs) * (len(nbrs) - 1) // 2
                for i, a in enumerate(nbrs):
                    for b in nbrs[i + 1:]:
                        if b in adj[a]:
                            tri += 1
            return tri / wedges if wedges else 0.0

        sw = generate_smallworld(300, neighbors=6,
                                 rewire_probability=0.05, seed=9)
        rnd = generate_rmat(8, edge_factor=3, a=0.25, b=0.25, c=0.25,
                            seed=9)
        assert clustering(sw) > 0.3
        assert clustering(sw) > 3 * clustering(rnd)

    def test_near_regular_degrees(self):
        el = generate_smallworld(400, neighbors=8,
                                 rewire_probability=0.1, seed=10)
        assert graph_stats(el.to_csr()).degree_cv < 0.2


class TestGrid3DStatistics:
    def test_bounded_degree(self):
        el = generate_grid3d(6, 6, 6, connectivity=18)
        assert el.to_csr().edge_counts().max() <= 18

    def test_diameter_class_is_large(self):
        # Meshes have large diameter (vs log n for small worlds): the
        # BFS eccentricity of a corner exceeds the grid side length sum
        # heuristic lower bound.
        from repro.graph.metrics import connected_components

        el = generate_grid3d(8, 4, 4, connectivity=6)
        g = el.to_csr()
        # BFS from vertex 0.
        dist = {0: 0}
        frontier = [0]
        while frontier:
            nxt = []
            for u in frontier:
                for v in g.neighbors(u)[0]:
                    if int(v) not in dist:
                        dist[int(v)] = dist[u] + 1
                        nxt.append(int(v))
            frontier = nxt
        assert max(dist.values()) == (8 - 1) + (4 - 1) + (4 - 1)
        assert np.all(connected_components(g) == 0)
