"""Unit tests for the distributed graph: slicing, ghosts, exchange, ingest."""

import numpy as np
import pytest

from repro.graph import CSRGraph, DistGraph, EdgeList, write_edgelist
from repro.runtime import FREE, run_spmd

from .conftest import planted_blocks_graph


def ring_graph(n=8):
    return EdgeList.from_arrays(
        n, np.arange(n), (np.arange(n) + 1) % n
    ).to_csr()


def spmd(size, fn, *args, **kw):
    return run_spmd(size, fn, *args, machine=FREE, timeout=15.0, **kw)


class TestFromGlobal:
    def test_slices_cover_graph(self):
        g = ring_graph(10)
        offsets = np.array([0, 4, 7, 10])
        parts = [DistGraph.from_global(g, offsets, r) for r in range(3)]
        assert sum(p.num_local for p in parts) == 10
        assert sum(p.num_local_entries for p in parts) == g.nnz
        total = sum(p.local_degrees().sum() for p in parts)
        assert total == pytest.approx(g.total_weight)

    def test_row_targets_are_global(self):
        g = ring_graph(6)
        offsets = np.array([0, 3, 6])
        p1 = DistGraph.from_global(g, offsets, 1)
        nbrs, _ = p1.row(0)  # local vertex 0 == global 3
        assert set(map(int, nbrs)) == {2, 4}

    def test_owner(self):
        g = ring_graph(6)
        dg = DistGraph.from_global(g, np.array([0, 3, 6]), 0)
        np.testing.assert_array_equal(
            dg.owner(np.array([0, 2, 3, 5])), [0, 0, 1, 1]
        )

    def test_partition_must_cover(self):
        g = ring_graph(6)
        with pytest.raises(ValueError):
            DistGraph.from_global(g, np.array([0, 3, 5]), 0)

    def test_local_self_loops(self):
        g = CSRGraph.from_edges(4, [0, 1, 1], [1, 2, 1], [1.0, 1.0, 2.5])
        dg = DistGraph.from_global(g, np.array([0, 2, 4]), 0)
        np.testing.assert_allclose(dg.local_self_loops(), [0.0, 2.5])


class TestGhostPlan:
    def test_ring_neighbors(self):
        g = ring_graph(8)

        def prog(comm):
            dg = DistGraph.distribute(comm, g, partition="even_vertex")
            plan = dg.build_ghost_plan(comm)
            return sorted(plan.ghost_ids.tolist()), plan.neighbor_ranks()

        r = spmd(4, prog)
        # Rank 1 owns {2,3}: ghosts are 1 and 4, owned by ranks 0 and 2.
        ghosts, nbrs = r.values[1]
        assert ghosts == [1, 4]
        assert nbrs == [0, 2]

    def test_plan_symmetry(self):
        g = planted_blocks_graph(blocks=4, per_block=10, seed=3)

        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            plan = dg.build_ghost_plan(comm)
            send = {r: ids.tolist() for r, ids in sorted(plan.send_ids.items())}
            recv = {r: ids.tolist() for r, ids in sorted(plan.recv_ids.items())}
            return send, recv

        r = spmd(3, prog)
        for a in range(3):
            for b in range(3):
                if a == b:
                    continue
                sends = r.values[a][0].get(b, [])
                recvs = r.values[b][1].get(a, [])
                assert sorted(sends) == sorted(recvs)

    def test_plan_cached(self):
        g = ring_graph(6)

        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            p1 = dg.build_ghost_plan(comm)
            p2 = dg.build_ghost_plan(comm)
            return p1 is p2

        assert all(spmd(3, prog).values)

    def test_single_rank_no_ghosts(self):
        g = ring_graph(6)

        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            return dg.build_ghost_plan(comm).num_ghosts

        assert spmd(1, prog).values == [0]


class TestGhostExchange:
    @pytest.mark.parametrize("use_neighbor", [False, True])
    def test_values_match_owners(self, use_neighbor):
        g = planted_blocks_graph(blocks=4, per_block=10, seed=3)

        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            plan = dg.build_ghost_plan(comm)
            # Send a recognisable function of the global vertex id.
            local = (np.arange(dg.vbegin, dg.vend) * 7 + 1).astype(np.int64)
            ghosts = dg.exchange_ghost_values(
                comm, plan, local, use_neighbor_collectives=use_neighbor
            )
            return bool(np.all(ghosts == plan.ghost_ids * 7 + 1))

        assert all(spmd(4, prog).values)

    @pytest.mark.parametrize("use_neighbor", [False, True])
    def test_insertion_order_of_plan_dicts_is_irrelevant(
        self, use_neighbor
    ):
        # Regression: exchange_ghost_values used to iterate
        # plan.send_ids/recv_ids in dict insertion order, so two plans
        # with the same content but different construction history could
        # exchange in different per-rank orders.  Both iterations are now
        # sorted; a plan with reversed insertion order must produce the
        # identical ghost array (checked under the schedule verifier).
        from repro.graph.distgraph import GhostPlan

        g = planted_blocks_graph(blocks=4, per_block=10, seed=3)

        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            plan = dg.build_ghost_plan(comm)
            reversed_plan = GhostPlan(
                ghost_ids=plan.ghost_ids,
                recv_ids=dict(reversed(list(plan.recv_ids.items()))),
                send_ids=dict(reversed(list(plan.send_ids.items()))),
            )
            local = (np.arange(dg.vbegin, dg.vend) * 7 + 1).astype(np.int64)
            a = dg.exchange_ghost_values(
                comm, plan, local, use_neighbor_collectives=use_neighbor
            )
            b = dg.exchange_ghost_values(
                comm, reversed_plan, local,
                use_neighbor_collectives=use_neighbor,
            )
            return bool(np.array_equal(a, b)) and bool(
                np.all(a == plan.ghost_ids * 7 + 1)
            )

        assert all(spmd(4, prog, verify_schedule=True).values)

    def test_wrong_length_rejected(self):
        g = ring_graph(8)

        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            plan = dg.build_ghost_plan(comm)
            dg.exchange_ghost_values(comm, plan, np.zeros(1, dtype=np.int64))

        from repro.runtime import RankFailedError

        with pytest.raises(RankFailedError):
            spmd(4, prog)

    def test_compressed_targets_resolve_communities(self):
        g = planted_blocks_graph(blocks=3, per_block=8, seed=5)

        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            plan = dg.build_ghost_plan(comm)
            ct = dg.compressed_targets(plan)
            local = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            ghosts = dg.exchange_ghost_values(comm, plan, local)
            resolved = np.concatenate([local, ghosts])[ct]
            return bool(np.all(resolved == dg.edges))

        assert all(spmd(3, prog).values)


class TestLoadBinary:
    @pytest.mark.parametrize("partition", ["even_vertex", "even_edge"])
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5])
    def test_matches_direct_distribution(self, tmp_path, partition, nranks):
        g = planted_blocks_graph(blocks=4, per_block=10, seed=7)
        el = EdgeList.from_csr(g)
        path = str(tmp_path / "g.bin")
        write_edgelist(path, el)

        def prog(comm):
            dg = DistGraph.load_binary(comm, path, partition=partition)
            return (
                float(dg.local_degrees().sum()),
                dg.total_weight,
                dg.num_local_entries,
            )

        r = spmd(nranks, prog)
        deg_total = sum(v[0] for v in r.values)
        assert deg_total == pytest.approx(g.total_weight)
        assert all(v[1] == pytest.approx(g.total_weight) for v in r.values)
        assert sum(v[2] for v in r.values) == g.nnz

    def test_shuffled_file_same_graph(self, tmp_path):
        g = planted_blocks_graph(blocks=3, per_block=8, seed=9)
        rng = np.random.default_rng(4)
        el = EdgeList.from_csr(g).permuted(rng)
        path = str(tmp_path / "shuf.bin")
        write_edgelist(path, el)

        def prog(comm):
            dg = DistGraph.load_binary(comm, path)
            return float(dg.weights.sum())

        r = spmd(4, prog)
        assert sum(r.values) == pytest.approx(g.total_weight)

    def test_io_charged(self, tmp_path):
        g = ring_graph(12)
        path = str(tmp_path / "r.bin")
        write_edgelist(path, EdgeList.from_csr(g))

        def prog(comm):
            DistGraph.load_binary(comm, path)
            return None

        from repro.runtime import CORI_HASWELL

        r = run_spmd(3, prog, machine=CORI_HASWELL, timeout=15.0)
        assert r.trace.seconds_by_category().get("io", 0) > 0


class TestOwnerLookup:
    def test_owner_of_matches_offsets(self):
        g = ring_graph(17)
        offsets = np.array([0, 5, 5, 11, 17])
        dg = DistGraph.from_global(g, offsets, 0)
        ids = np.arange(17)
        expected = np.searchsorted(offsets, ids, side="right") - 1
        np.testing.assert_array_equal(dg.owner_of(ids), expected)

    def test_owner_of_scalar_and_boundaries(self):
        g = ring_graph(10)
        offsets = np.array([0, 3, 7, 10])
        dg = DistGraph.from_global(g, offsets, 1)
        assert dg.owner_of(0) == 0
        assert dg.owner_of(2) == 0
        assert dg.owner_of(3) == 1  # first vertex of rank 1's slice
        assert dg.owner_of(6) == 1
        assert dg.owner_of(7) == 2
        assert dg.owner_of(9) == 2

    def test_empty_rank_owns_nothing(self):
        g = ring_graph(6)
        offsets = np.array([0, 3, 3, 6])  # rank 1 owns no vertices
        dg = DistGraph.from_global(g, offsets, 0)
        owners = dg.owner_of(np.arange(6))
        assert 1 not in owners


class TestSplitByRank:
    def test_buckets_and_stability(self):
        from repro.graph.distgraph import split_by_rank

        ranks = np.array([2, 0, 2, 1, 0, 2])
        vals = np.array([10, 11, 12, 13, 14, 15])
        aux = vals * 2.0
        out = split_by_rank(ranks, 4, vals, aux)
        assert len(out) == 4
        np.testing.assert_array_equal(out[0][0], [11, 14])
        np.testing.assert_array_equal(out[1][0], [13])
        np.testing.assert_array_equal(out[2][0], [10, 12, 15])
        assert len(out[3][0]) == 0
        # Aligned arrays stay aligned.
        for r in range(4):
            np.testing.assert_array_equal(out[r][1], out[r][0] * 2.0)

    def test_empty_input(self):
        from repro.graph.distgraph import split_by_rank

        out = split_by_rank(np.empty(0, np.int64), 3, np.empty(0, np.int64))
        assert len(out) == 3
        assert all(len(t[0]) == 0 for t in out)
