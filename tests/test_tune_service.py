"""Integration tests: the autotuner behind DetectionRequest(tune="auto")."""

import time

import pytest

from repro.core import LouvainConfig
from repro.generators import make_graph
from repro.service import DetectionRequest, Engine
from repro.tune import TunerSettings, TuningDB, default_space, tune_graph

SMALL_SETTINGS = TunerSettings(trials=3, rung_phase_caps=(1,))


@pytest.fixture(scope="module")
def channel():
    return make_graph("channel", scale="tiny", seed=0)


@pytest.fixture(scope="module")
def tuned_db(channel):
    db = TuningDB()
    tune_graph(
        channel, db, space=default_space(max_ranks=4),
        settings=SMALL_SETTINGS,
    )
    return db


def _wait_for_record(db, fingerprint, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        rec = db.get(fingerprint)
        if rec is not None:
            return rec
        time.sleep(0.02)
    raise AssertionError("background tune job never landed")


class TestRequestValidation:
    def test_default_is_off(self, channel):
        assert DetectionRequest(graph=channel).tune == "off"

    def test_bad_mode_rejected(self, channel):
        with pytest.raises(ValueError, match="tune must be one of"):
            DetectionRequest(graph=channel, tune="always")

    def test_resume_incompatible(self, tmp_path):
        with pytest.raises(ValueError, match="resume"):
            DetectionRequest(
                mode="resume", checkpoint_dir=str(tmp_path), tune="auto"
            )


class TestEngineConstruction:
    def test_tune_on_miss_requires_db(self):
        with pytest.raises(ValueError, match="tuning_db"):
            Engine(tune_on_miss=True)


class TestExactHit:
    def test_plan_substituted(self, channel, tuned_db):
        rec = tuned_db.get(channel.fingerprint())
        with Engine(workers=1, tuning_db=tuned_db) as eng:
            resp = eng.detect(DetectionRequest(graph=channel, tune="auto"))
        assert resp.tuned
        assert resp.request.config == rec.config
        assert resp.request.nranks == rec.ranks
        assert resp.result is not None
        assert "(tuned)" in resp.summary()

    def test_counters(self, channel, tuned_db):
        with Engine(workers=1, tuning_db=tuned_db) as eng:
            eng.detect(DetectionRequest(graph=channel, tune="auto"))
            counters = eng.metrics.snapshot()["counters"]
        assert counters["tune_hits"] == 1
        assert "tune_misses" not in counters

    def test_tune_off_ignores_db(self, channel, tuned_db):
        with Engine(workers=1, tuning_db=tuned_db) as eng:
            resp = eng.detect(DetectionRequest(graph=channel, nranks=2))
        assert not resp.tuned
        assert resp.request.nranks == 2


class TestNearestHit:
    def test_sibling_graph_served(self, channel, tuned_db):
        sibling = make_graph("channel", scale="tiny", seed=3)
        rec = tuned_db.get(channel.fingerprint())
        with Engine(workers=1, tuning_db=tuned_db) as eng:
            resp = eng.detect(DetectionRequest(graph=sibling, tune="auto"))
            counters = eng.metrics.snapshot()["counters"]
        assert resp.tuned
        assert resp.request.config == rec.config
        assert counters["tune_nearest_hits"] == 1


class TestMiss:
    def test_no_db_runs_as_written(self, channel):
        with Engine(workers=1) as eng:
            resp = eng.detect(
                DetectionRequest(graph=channel, nranks=2, tune="auto")
            )
            counters = eng.metrics.snapshot()["counters"]
        assert not resp.tuned
        assert resp.request.nranks == 2
        assert counters["tune_unavailable"] == 1

    def test_miss_runs_as_written_without_background(self, channel):
        db = TuningDB()
        with Engine(workers=1, tuning_db=db) as eng:
            resp = eng.detect(
                DetectionRequest(graph=channel, nranks=2, tune="auto")
            )
            counters = eng.metrics.snapshot()["counters"]
        assert not resp.tuned
        assert counters["tune_misses"] == 1
        assert "tune_jobs" not in counters
        assert len(db) == 0

    def test_tune_on_miss_populates_db(self, channel):
        db = TuningDB()
        with Engine(
            workers=2, tuning_db=db, tune_on_miss=True,
            tune_settings=SMALL_SETTINGS,
        ) as eng:
            first = eng.detect(
                DetectionRequest(graph=channel, nranks=2, tune="auto")
            )
            assert not first.tuned  # the miss still runs as written
            rec = _wait_for_record(db, channel.fingerprint())
            second = eng.detect(
                DetectionRequest(graph=channel, nranks=2, tune="auto")
            )
            snap = eng.metrics.snapshot()
        assert second.tuned
        assert second.request.config == rec.config
        assert snap["counters"]["background_tunes"] == 1
        # The background search's modelled cost lands in the trace
        # aggregate under its own category.
        assert snap["modelled"]["seconds_by_category"]["tune"] > 0
