"""Integration tests for the async detection engine.

Covers the tentpole behaviours end-to-end on tiny graphs: concurrent
job completion, cache hits with bit-identical results, backpressure,
cancellation, timeout, and retry-with-resume after an injected rank
failure.
"""

import numpy as np
import pytest

from repro.core import LouvainConfig
from repro.core.distlouvain import run_louvain
from repro.generators import make_graph
from repro.resilience import FaultPlan
from repro.service import (
    AdmissionError,
    DetectionRequest,
    Engine,
    JobState,
    ResultStore,
    detect,
)


@pytest.fixture(scope="module")
def tiny():
    return make_graph("soc-friendster", scale="tiny")


class TestInlineDetect:
    def test_detect_matches_core(self, tiny):
        cfg = LouvainConfig(seed=7)
        response = detect(DetectionRequest(graph=tiny, nranks=2, config=cfg))
        assert response.state is JobState.DONE
        reference = run_louvain(tiny, 2, cfg)
        assert np.array_equal(response.result.assignment, reference.assignment)
        assert response.result.modularity == reference.modularity

    def test_detect_failure_raises(self, tiny):
        request = DetectionRequest(
            graph=tiny,
            nranks=2,
            config=LouvainConfig(),
            fault_plan=FaultPlan(kills={0: 5}),
            max_retries=0,
        )
        with pytest.raises(Exception):
            detect(request)


class TestConcurrentJobs:
    def test_all_jobs_complete(self, tiny):
        with Engine(workers=3) as engine:
            ids = [
                engine.submit(
                    DetectionRequest(
                        graph=tiny, nranks=2, config=LouvainConfig(seed=s)
                    )
                )
                for s in range(8)
            ]
            responses = engine.wait_all(ids, timeout=300)
        assert all(r.state is JobState.DONE for r in responses)
        assert engine.metrics.snapshot()["counters"]["completed"] == 8

    def test_responses_in_requested_order(self, tiny):
        with Engine(workers=2) as engine:
            ids = [
                engine.submit(
                    DetectionRequest(graph=tiny, nranks=2, tag=f"t{i}")
                )
                for i in range(4)
            ]
            responses = engine.wait_all(list(reversed(ids)), timeout=300)
        assert [r.job_id for r in responses] == list(reversed(ids))


class TestCache:
    def test_repeat_is_hit_and_bit_identical(self, tiny):
        request = DetectionRequest(graph=tiny, nranks=2, config=LouvainConfig())
        with Engine(workers=2, store=ResultStore(capacity=8)) as engine:
            first = engine.wait(engine.submit(request), timeout=300)
            second = engine.wait(engine.submit(request), timeout=300)
            counters = engine.metrics.snapshot()["counters"]
        assert not first.cache_hit
        assert second.cache_hit
        assert counters["cache_hits"] == 1
        assert np.array_equal(
            first.result.assignment, second.result.assignment
        )
        assert first.result.modularity == second.result.modularity
        assert first.result.elapsed == second.result.elapsed

    def test_different_config_is_miss(self, tiny):
        with Engine(workers=1, store=ResultStore(capacity=8)) as engine:
            engine.wait(
                engine.submit(
                    DetectionRequest(
                        graph=tiny, nranks=2, config=LouvainConfig(seed=0)
                    )
                ),
                timeout=300,
            )
            second = engine.wait(
                engine.submit(
                    DetectionRequest(
                        graph=tiny, nranks=2, config=LouvainConfig(seed=1)
                    )
                ),
                timeout=300,
            )
        assert not second.cache_hit

    def test_uncacheable_requests_bypass_store(self, tiny):
        request = DetectionRequest(
            graph=tiny, nranks=2, config=LouvainConfig(), use_cache=False
        )
        with Engine(workers=1, store=ResultStore(capacity=8)) as engine:
            engine.wait(engine.submit(request), timeout=300)
            second = engine.wait(engine.submit(request), timeout=300)
        assert not second.cache_hit


class TestBackpressure:
    def test_queue_full_rejects_with_reason(self, tiny):
        # One slow-ish job occupies the single worker; one fits in the
        # queue; the third must be rejected, not silently dropped.
        with Engine(workers=1, queue_depth=1) as engine:
            req = DetectionRequest(graph=tiny, nranks=2)
            first = engine.submit(req)
            accepted = 1
            rejected = 0
            for _ in range(8):
                try:
                    engine.submit(req)
                    accepted += 1
                except AdmissionError as exc:
                    assert exc.reason == "queue-full"
                    rejected += 1
            assert rejected >= 1
            engine.wait(first, timeout=300)
            counters = engine.metrics.snapshot()["counters"]
            assert counters["rejected"] == rejected
            assert counters["rejected_queue-full"] == rejected


class TestCancellation:
    def test_cancel_pending_job(self, tiny):
        with Engine(workers=1, queue_depth=8) as engine:
            req = DetectionRequest(graph=tiny, nranks=2)
            blocker = engine.submit(req)
            victim = engine.submit(req)
            assert engine.cancel(victim)
            response = engine.wait(victim, timeout=300)
            assert response.state is JobState.CANCELLED
            assert response.result is None
            # The blocker is unaffected.
            assert engine.wait(blocker, timeout=300).state is JobState.DONE
        assert engine.metrics.snapshot()["counters"]["cancelled"] == 1

    def test_cancel_done_job_is_false(self, tiny):
        with Engine(workers=1) as engine:
            job = engine.submit(DetectionRequest(graph=tiny, nranks=2))
            engine.wait(job, timeout=300)
            assert not engine.cancel(job)


class TestRetryWithResume:
    def test_fault_retried_and_resumed(self, tiny, tmp_path):
        cfg = LouvainConfig(seed=3)
        request = DetectionRequest(
            graph=tiny,
            nranks=4,
            config=cfg,
            fault_plan=FaultPlan(kills={1: 60}),
            max_retries=2,
        )
        with Engine(
            workers=1,
            workdir=str(tmp_path),
            checkpoint_every_iterations=2,
        ) as engine:
            response = engine.wait(engine.submit(request), timeout=300)
        assert response.state is JobState.DONE
        assert response.retries >= 1
        assert response.resumed_from_checkpoint
        reference = run_louvain(tiny, 4, cfg)
        assert np.array_equal(response.result.assignment, reference.assignment)
        assert response.result.modularity == reference.modularity

    def test_exhausted_retries_fail(self, tiny, tmp_path):
        request = DetectionRequest(
            graph=tiny,
            nranks=2,
            config=LouvainConfig(),
            # Rank 0 dies on every attempt: op 5 of attempt 1, and the
            # plan is dropped after the first failure — so kill attempt
            # 2 too by allowing zero retries.
            fault_plan=FaultPlan(kills={0: 5}),
            max_retries=0,
        )
        with Engine(workers=1, workdir=str(tmp_path)) as engine:
            response = engine.wait(engine.submit(request), timeout=300)
        assert response.state is JobState.FAILED
        assert response.error
        assert engine.metrics.snapshot()["counters"]["failed"] == 1


class TestObservability:
    def test_trace_report_merges_jobs(self, tiny):
        with Engine(workers=2) as engine:
            ids = [
                engine.submit(DetectionRequest(graph=tiny, nranks=2))
                for _ in range(3)
            ]
            engine.wait_all(ids, timeout=300)
            report = engine.trace_report()
        assert report.size == 6  # 3 jobs x 2 ranks
        snapshot = engine.metrics.snapshot()
        assert snapshot["latency"]["run_seconds"]["count"] == 3
        assert "compute" in snapshot["modelled"]["seconds_by_category"]

    def test_metrics_format_renders(self, tiny):
        with Engine(workers=1) as engine:
            engine.wait(
                engine.submit(DetectionRequest(graph=tiny, nranks=2)),
                timeout=300,
            )
            text = engine.metrics.format()
        assert "completed" in text
        assert "queue wait" in text
