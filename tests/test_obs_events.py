"""Structured event-log tests: round-trip, ordering, id correlation.

The correlation test is the tentpole scenario: one detection traced
from admission through the SPMD collectives to the cache write, all
records sharing the engine-assigned job id.
"""

import json

import pytest

from repro.obs import EventLog, emit_current, read_events, scoped
from repro.obs.events import EVENT_FORMAT_VERSION


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, origin="test") as log:
            log.emit("alpha", x=1)
            log.emit("beta", x=2, tag="t")
        events = read_events(path)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["origin"] == "test"
        assert events[0]["v"] == EVENT_FORMAT_VERSION
        assert events[1]["tag"] == "t"

    def test_lines_are_single_line_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("note", text="line one\nline two")
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["text"] == "line one\nline two"

    def test_filtering_by_field(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("job_started", job_id="a")
            log.emit("job_started", job_id="b")
            log.emit("job_finished", job_id="a")
        assert len(read_events(path, job_id="a")) == 2
        assert len(read_events(path, event="job_started", job_id="b")) == 1

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("one")
        log.close()
        log.emit("two")
        assert len(read_events(path)) == 1

    def test_read_sorted_by_time_then_seq(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            for i in range(20):
                log.emit("tick", i=i)
        events = read_events(path)
        assert [e["i"] for e in events] == list(range(20))


class TestScopedEmission:
    def test_scope_ids_attached(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            with scoped(log, job_id="j1", tenant="acme"):
                emit_current("inner", step=1)
        (event,) = read_events(path)
        assert event["job_id"] == "j1"
        assert event["tenant"] == "acme"
        assert event["step"] == 1

    def test_emit_current_without_scope_is_noop(self):
        emit_current("orphan")  # must not raise

    def test_none_log_scope_is_noop(self):
        with scoped(None, job_id="x"):
            emit_current("dropped")


class TestEndToEndCorrelation:
    """Engine + SPMD + cache records correlate on one job id."""

    def test_detection_traced_end_to_end(self, tmp_path):
        from repro.generators import make_graph
        from repro.service import DetectionRequest, Engine, ResultStore

        path = tmp_path / "events.jsonl"
        g = make_graph("soc-friendster", scale="tiny")
        log = EventLog(path, origin="engine")
        store = ResultStore(directory=str(tmp_path / "cache"))
        with Engine(workers=1, store=store, event_log=log) as engine:
            job_id = engine.submit(DetectionRequest(graph=g, nranks=2))
            engine.wait(job_id, timeout=300)
        log.close()

        mine = read_events(path, job_id=job_id)
        kinds = [e["event"] for e in mine]
        # Admission -> run -> SPMD world -> phases -> cache -> done,
        # every record carrying the same job id.
        assert kinds[0] == "job_submitted"
        assert "job_started" in kinds
        assert "spmd_run_started" in kinds
        assert "spmd_run_finished" in kinds
        assert "spmd_phase" in kinds
        assert "cache_write" in kinds
        assert kinds[-1] == "job_finished"
        run = next(e for e in mine if e["event"] == "spmd_run_started")
        assert run["size"] == 2
        done = mine[-1]
        assert done["state"] == "done"
        assert done["cache_hit"] is False

    def test_cache_hit_recorded(self, tmp_path):
        from repro.generators import make_graph
        from repro.service import DetectionRequest, Engine, ResultStore

        path = tmp_path / "events.jsonl"
        g = make_graph("soc-friendster", scale="tiny")
        with EventLog(path) as log:
            store = ResultStore(directory=str(tmp_path / "cache"))
            with Engine(workers=1, store=store, event_log=log) as engine:
                first = engine.submit(DetectionRequest(graph=g, nranks=2))
                engine.wait(first, timeout=300)
                second = engine.submit(DetectionRequest(graph=g, nranks=2))
                engine.wait(second, timeout=300)
        hits = read_events(path, event="cache_hit")
        assert len(hits) == 1
        assert hits[0]["job_id"] == second

    @pytest.mark.slow
    def test_shard_records_tagged_by_origin(self, tmp_path):
        from repro.generators import make_graph
        from repro.serving import ServingTier

        path = tmp_path / "events.jsonl"
        g = make_graph("soc-friendster", scale="tiny")
        tier = ServingTier(
            shards=2, workers_per_shard=1, event_log_path=str(path)
        )
        try:
            tier.create_tenant("acme")
            tier.load_graph("acme", g)
            handle = tier.detect("acme")
            tier.wait(handle)
        finally:
            tier.shutdown()
        origins = {e["origin"] for e in read_events(path)}
        assert "serving" in origins
        assert any(o.startswith("shard-") for o in origins)
        # The tier's submit record and the shard's engine records agree
        # on the job id.
        tier_submits = read_events(path, event="tier_submit")
        assert tier_submits
        job_id = tier_submits[0]["job_id"]
        shard_side = [
            e
            for e in read_events(path, job_id=job_id)
            if e["origin"].startswith("shard-")
        ]
        assert any(e["event"] == "job_finished" for e in shard_side)
