"""Unit tests for the snapshot move-selection kernel."""

import numpy as np
import pytest

from repro.core import move_gain, propose_moves, sorted_lookup
from repro.core.sweep import array_lookup
from repro.graph import CSRGraph, EdgeList


def dense_sweep(g: CSRGraph, comm: np.ndarray, active=None):
    """Helper: run propose_moves with dense (shared-memory) lookups."""
    n = g.num_vertices
    k = g.degrees()
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.index))
    tot = np.zeros(n)
    np.add.at(tot, comm, k)
    size = np.bincount(comm, minlength=n)
    return propose_moves(
        index=g.index,
        target_comm=comm[g.edges],
        weights=g.weights,
        self_mask=g.edges == rows,
        degrees=k,
        cur_comm=comm,
        total_weight=g.total_weight,
        tot_lookup=lambda ids: tot[ids],
        size_lookup=lambda ids: size[ids],
        active=active,
    )


class TestProposeMoves:
    def test_singleton_joins_adjacent_clique(self, two_cliques):
        comm = np.array([9] + [0] * 4 + [5] * 5, dtype=np.int64)
        res = dense_sweep(two_cliques, comm)
        assert res.proposal[0] == 0
        assert res.moved[0]

    def test_settled_partition_stable(self, two_cliques):
        comm = np.array([0] * 5 + [5] * 5, dtype=np.int64)
        res = dense_sweep(two_cliques, comm)
        assert res.num_moves == 0
        np.testing.assert_array_equal(res.proposal, comm)

    def test_moves_only_with_positive_gain(self, planted_blocks):
        # From singletons, every accepted move must not decrease Q when
        # applied alone (the score is gain-equivalent).
        g = planted_blocks
        comm = np.arange(g.num_vertices, dtype=np.int64)
        res = dense_sweep(g, comm)
        rng = np.random.default_rng(0)
        movers = np.flatnonzero(res.moved)
        for u in rng.choice(movers, size=min(10, len(movers)), replace=False):
            gain = move_gain(g, comm, int(u), int(res.proposal[u]))
            assert gain > 0

    def test_chosen_move_is_argmax(self, planted_blocks):
        # The proposed target must beat every other candidate in exact ΔQ.
        g = planted_blocks
        comm = np.arange(g.num_vertices, dtype=np.int64)
        res = dense_sweep(g, comm)
        u = int(np.flatnonzero(res.moved)[0])
        nbrs, _ = g.neighbors(u)
        best = move_gain(g, comm, u, int(res.proposal[u]))
        for t in set(int(comm[v]) for v in nbrs if v != u):
            assert best >= move_gain(g, comm, u, t) - 1e-9

    def test_inactive_vertices_frozen(self, two_cliques):
        comm = np.array([9] + [0] * 4 + [5] * 5, dtype=np.int64)
        active = np.ones(10, dtype=bool)
        active[0] = False
        res = dense_sweep(two_cliques, comm, active)
        assert not res.moved[0]
        assert res.proposal[0] == 9

    def test_all_inactive_noop(self, two_cliques):
        comm = np.arange(10, dtype=np.int64)
        res = dense_sweep(two_cliques, comm, np.zeros(10, dtype=bool))
        assert res.num_moves == 0
        assert res.pairs_evaluated == 0

    def test_singleton_swap_suppressed(self):
        # Two connected singletons: only the larger id may move.
        g = EdgeList.from_arrays(2, [0], [1]).to_csr()
        comm = np.arange(2, dtype=np.int64)
        res = dense_sweep(g, comm)
        assert res.proposal[0] == 0  # vertex 0 stays (target id larger)
        assert res.proposal[1] == 0  # vertex 1 moves down
        # One more sweep from the merged state: stable.
        res2 = dense_sweep(g, res.proposal)
        assert res2.num_moves == 0

    def test_tie_breaks_to_smallest_community(self):
        # Path 1 - 0 - 2: vertex 0 gains equally joining 1 or 2.
        g = EdgeList.from_arrays(3, [0, 0], [1, 2]).to_csr()
        comm = np.arange(3, dtype=np.int64)
        res = dense_sweep(g, comm)
        assert res.proposal[0] == 0 or res.proposal[0] == 1
        # Tie-break rule: among equal scores the smallest community wins,
        # and vertex 0's own community (0) is the smallest — no move.
        # Vertices 1 and 2 strictly gain by joining 0 (smaller id rule).
        assert res.proposal[1] == 0
        assert res.proposal[2] == 0

    def test_empty_graph(self):
        g = CSRGraph.empty(0)
        res = dense_sweep(g, np.empty(0, dtype=np.int64))
        assert res.num_moves == 0

    def test_isolated_vertices_never_move(self):
        g = CSRGraph.empty(4)
        comm = np.arange(4, dtype=np.int64)
        res = dense_sweep(g, comm)
        assert res.num_moves == 0

    def test_self_loop_only_vertex_stays(self):
        g = CSRGraph.from_edges(2, [0, 0], [0, 1], [5.0, 1.0])
        comm = np.arange(2, dtype=np.int64)
        res = dense_sweep(g, comm)
        # Vertex 1 joining 0 is profitable; 0 must not chase its loop.
        assert res.proposal[0] == 0


class TestLookups:
    def test_sorted_lookup_hits(self):
        look = sorted_lookup(
            np.array([2, 5, 9]), np.array([20.0, 50.0, 90.0])
        )
        np.testing.assert_allclose(
            look(np.array([9, 2, 5, 2])), [90.0, 20.0, 50.0, 20.0]
        )

    def test_sorted_lookup_miss_raises(self):
        look = sorted_lookup(np.array([2, 5]), np.array([1.0, 2.0]))
        with pytest.raises(KeyError, match="missing"):
            look(np.array([3]))

    def test_sorted_lookup_miss_past_end(self):
        look = sorted_lookup(np.array([2, 5]), np.array([1.0, 2.0]))
        with pytest.raises(KeyError):
            look(np.array([99]))

    def test_sorted_lookup_empty_table(self):
        look = sorted_lookup(np.empty(0, np.int64), np.empty(0))
        assert len(look(np.empty(0, np.int64))) == 0
        with pytest.raises(KeyError):
            look(np.array([1]))

    def test_array_lookup_dense(self):
        look = array_lookup(None, np.array([10.0, 20.0, 30.0]))
        np.testing.assert_allclose(look(np.array([2, 0])), [30.0, 10.0])
