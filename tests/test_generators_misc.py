"""Unit tests for R-MAT, mesh, web-crawl and small-world generators."""

import numpy as np
import pytest

from repro.generators import (
    generate_banded,
    generate_grid3d,
    generate_rmat,
    generate_smallworld,
    generate_webgraph,
)
from repro.graph.metrics import graph_stats, is_connected


class TestRMAT:
    def test_vertex_count_power_of_two(self):
        el = generate_rmat(8, edge_factor=8, seed=0)
        assert el.num_vertices == 256

    def test_skewed_degrees(self):
        el = generate_rmat(10, edge_factor=16, seed=1)
        s = graph_stats(el.to_csr())
        assert s.degree_cv > 1.0  # heavy tail
        assert s.max_degree > 10 * s.mean_degree / 2

    def test_no_self_loops_by_default(self):
        el = generate_rmat(7, seed=2)
        assert np.all(el.u != el.v)

    def test_self_loops_kept_when_asked(self):
        el = generate_rmat(7, seed=2, drop_self_loops=False)
        assert np.any(el.u == el.v)  # R-MAT always produces some

    def test_uniform_quadrants_flatten_degrees(self):
        skew = generate_rmat(9, a=0.7, b=0.1, c=0.1, seed=3)
        flat = generate_rmat(9, a=0.25, b=0.25, c=0.25, seed=3)
        assert (
            graph_stats(skew.to_csr()).degree_cv
            > graph_stats(flat.to_csr()).degree_cv
        )

    def test_deterministic(self):
        a = generate_rmat(6, seed=5)
        b = generate_rmat(6, seed=5)
        np.testing.assert_array_equal(a.u, b.u)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_rmat(0)
        with pytest.raises(ValueError):
            generate_rmat(5, a=0.5, b=0.3, c=0.3)


class TestGrid3D:
    def test_vertex_count(self):
        el = generate_grid3d(4, 5, 6)
        assert el.num_vertices == 120

    def test_6_connectivity_edge_count(self):
        # nx*ny*nz grid: edges = (nx-1)ny nz + nx(ny-1)nz + nx ny(nz-1).
        el = generate_grid3d(3, 4, 5, connectivity=6)
        expected = 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4
        assert el.num_edges == expected

    def test_18_has_more_edges(self):
        e6 = generate_grid3d(4, 4, 4, connectivity=6).num_edges
        e18 = generate_grid3d(4, 4, 4, connectivity=18).num_edges
        assert e18 > e6

    def test_connected(self):
        assert is_connected(generate_grid3d(3, 3, 3).to_csr())

    def test_jitter_adds_edges(self):
        base = generate_grid3d(4, 4, 4, seed=1).num_edges
        jit = generate_grid3d(4, 4, 4, seed=1, jitter_fraction=0.2).num_edges
        assert jit > base

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_grid3d(0, 2, 2)
        with pytest.raises(ValueError):
            generate_grid3d(2, 2, 2, connectivity=26)


class TestBanded:
    def test_band_structure(self):
        el = generate_banded(100, bandwidth=5, density=1.0, seed=0)
        assert np.all(np.abs(el.u - el.v) <= 5)

    def test_full_density_edge_count(self):
        el = generate_banded(50, bandwidth=3, density=1.0)
        assert el.num_edges == 49 + 48 + 47

    def test_density_scales_edges(self):
        lo = generate_banded(200, 8, density=0.3, seed=1).num_edges
        hi = generate_banded(200, 8, density=0.9, seed=1).num_edges
        assert hi > 2 * lo

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_banded(10, bandwidth=0)
        with pytest.raises(ValueError):
            generate_banded(10, bandwidth=2, density=0.0)


class TestWebGraph:
    def test_hosts_cover_vertices(self):
        g = generate_webgraph(500, seed=0)
        assert len(g.host_of) == 500
        assert g.num_hosts > 1

    def test_hosts_internally_connected(self):
        g = generate_webgraph(300, inter_fraction=0.0, seed=1)
        csr = g.edges.to_csr()
        # Every vertex has at least one neighbour on the same host.
        for u in range(csr.num_vertices):
            nbrs, _ = csr.neighbors(u)
            assert any(g.host_of[v] == g.host_of[u] for v in nbrs)

    def test_inter_fraction_controls_cut(self):
        lo = generate_webgraph(400, inter_fraction=0.01, seed=2)
        hi = generate_webgraph(400, inter_fraction=0.3, seed=2)
        def cut_frac(g):
            cross = g.host_of[g.edges.u] != g.host_of[g.edges.v]
            return cross.mean()
        assert cut_frac(lo) < cut_frac(hi)

    def test_heavy_tailed_host_sizes(self):
        g = generate_webgraph(2000, mean_host_size=30, seed=3)
        sizes = np.bincount(g.host_of)
        assert sizes.max() > 2.0 * sizes.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_webgraph(1)


class TestSmallWorld:
    def test_ring_degree_without_rewiring(self):
        el = generate_smallworld(50, neighbors=6, rewire_probability=0.0)
        degs = el.to_csr().edge_counts()
        np.testing.assert_array_equal(degs, np.full(50, 6))

    def test_rewiring_perturbs(self):
        base = generate_smallworld(100, 6, rewire_probability=0.0, seed=1)
        rew = generate_smallworld(100, 6, rewire_probability=0.5, seed=1)
        assert set(zip(base.u, base.v)) != set(zip(rew.u, rew.v))

    def test_edge_count_stable_under_rewiring(self):
        el = generate_smallworld(200, 8, rewire_probability=0.3, seed=2)
        # Rewiring + dedup can only lose a few edges.
        assert el.num_edges > 0.9 * 200 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_smallworld(2)
        with pytest.raises(ValueError):
            generate_smallworld(10, neighbors=3)
        with pytest.raises(ValueError):
            generate_smallworld(10, rewire_probability=1.5)
