"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph import CSRGraph


def small_graph():
    # Triangle 0-1-2, pendant 3, self loop at 0.
    return CSRGraph.from_edges(
        4, [0, 1, 0, 2, 0], [1, 2, 2, 3, 0], [1.0, 2.0, 3.0, 4.0, 0.5]
    )


class TestConstruction:
    def test_shape(self):
        g = small_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 5
        # 4 non-loop edges stored twice + 1 loop stored once.
        assert g.nnz == 9

    def test_total_weight_convention(self):
        g = small_graph()
        assert g.total_weight == pytest.approx(2 * (1 + 2 + 3 + 4) + 0.5)

    def test_degrees(self):
        g = small_graph()
        np.testing.assert_allclose(g.degrees(), [4.5, 3.0, 9.0, 4.0])

    def test_self_loops(self):
        g = small_graph()
        np.testing.assert_allclose(g.self_loop_weights(), [0.5, 0, 0, 0])

    def test_unweighted_default(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 2])
        assert g.total_weight == pytest.approx(4.0)

    def test_duplicate_edges_combine(self):
        g = CSRGraph.from_edges(2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 3.0])
        assert g.num_edges == 1
        nbrs, w = g.neighbors(0)
        assert list(nbrs) == [1]
        assert w[0] == pytest.approx(6.0)

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.total_weight == 0.0
        np.testing.assert_array_equal(g.degrees(), np.zeros(5))

    def test_zero_vertices(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0

    def test_out_of_range_endpoint(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [0], [5])

    def test_negative_vertex(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [-1], [0])

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [0, 1], [1])

    def test_invalid_index_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(
                index=np.array([0, 2, 1], dtype=np.int64),
                edges=np.array([0, 1], dtype=np.int64),
                weights=np.ones(2),
            )


class TestAccess:
    def test_neighbors_view(self):
        g = small_graph()
        nbrs, w = g.neighbors(0)
        assert set(map(int, nbrs)) == {0, 1, 2}

    def test_iter_edges_each_once(self):
        g = small_graph()
        edges = sorted(g.iter_edges())
        assert edges == [
            (0, 0, 0.5),
            (0, 1, 1.0),
            (0, 2, 3.0),
            (1, 2, 2.0),
            (2, 3, 4.0),
        ]

    def test_edge_array_matches_iter(self):
        g = small_graph()
        eu, ev, ew = g.edge_array()
        from_iter = sorted(g.iter_edges())
        from_arr = sorted(zip(eu.tolist(), ev.tolist(), ew.tolist()))
        assert from_arr == from_iter

    def test_edge_counts(self):
        g = small_graph()
        np.testing.assert_array_equal(g.edge_counts(), [3, 2, 3, 1])

    def test_validate_good_graph(self):
        small_graph().validate()

    def test_validate_detects_asymmetry(self):
        g = CSRGraph(
            index=np.array([0, 1, 1], dtype=np.int64),
            edges=np.array([1], dtype=np.int64),
            weights=np.array([1.0]),
        )
        with pytest.raises(ValueError, match="asymmetric"):
            g.validate()

    def test_validate_detects_out_of_range_target(self):
        g = CSRGraph(
            index=np.array([0, 1], dtype=np.int64),
            edges=np.array([7], dtype=np.int64),
            weights=np.array([1.0]),
        )
        with pytest.raises(ValueError, match="out of range"):
            g.validate()


class TestRelabel:
    def test_relabel_preserves_structure(self):
        g = small_graph()
        perm = np.array([3, 2, 1, 0])
        h = g.relabel(perm)
        assert h.num_edges == g.num_edges
        assert h.total_weight == pytest.approx(g.total_weight)
        # Degree multiset is preserved.
        assert sorted(h.degrees()) == sorted(g.degrees())

    def test_relabel_identity(self):
        g = small_graph()
        h = g.relabel(np.arange(4))
        np.testing.assert_array_equal(h.edges, g.edges)

    def test_relabel_requires_permutation(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.relabel(np.array([0, 0, 1, 2]))

    def test_relabel_wrong_length(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.relabel(np.arange(3))


class TestFingerprint:
    def test_deterministic(self):
        assert small_graph().fingerprint() == small_graph().fingerprint()

    def test_hex_sha256(self):
        fp = small_graph().fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # must be hex

    def test_weight_changes_fingerprint(self):
        a = CSRGraph.from_edges(3, [0, 1], [1, 2], [1.0, 1.0])
        b = CSRGraph.from_edges(3, [0, 1], [1, 2], [1.0, 2.0])
        assert a.fingerprint() != b.fingerprint()

    def test_structure_changes_fingerprint(self):
        a = CSRGraph.from_edges(3, [0, 1], [1, 2])
        b = CSRGraph.from_edges(3, [0, 0], [1, 2])
        assert a.fingerprint() != b.fingerprint()

    def test_isolated_vertex_changes_fingerprint(self):
        a = CSRGraph.from_edges(3, [0, 1], [1, 2])
        b = CSRGraph.from_edges(4, [0, 1], [1, 2])
        assert a.fingerprint() != b.fingerprint()
