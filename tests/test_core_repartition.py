"""Community-aware repartitioning must be bit-identical to the even split.

``repartition="community"`` is a pure *layout* optimisation: phase-
boundary reconstruction places whole coarse communities per rank
instead of re-establishing the paper's even split, but the meta-graph,
the float accumulation orders, and every collective outcome are
unchanged — so assignments and modularity match ``repartition="none"``
exactly for the deterministic variants, across rank counts and the
transport knobs.  (ET/ETC draw per-rank randomness whose layout
sensitivity is inherent, exactly as changing the rank count, so they
are out of scope here.)
"""

import numpy as np
import pytest

from repro.core import LouvainConfig, Variant, run_louvain
from repro.resilience import FaultPlan
from repro.runtime import FREE, InjectedFault, RankFailedError

from .conftest import planted_blocks_graph


@pytest.fixture(autouse=True)
def _verify_schedule(monkeypatch):
    """Run this suite under the dynamic collective-schedule verifier so
    a layout-induced schedule divergence fails at its first mismatched
    op instead of on end-state mismatch."""
    monkeypatch.setenv("REPRO_VERIFY_SCHEDULE", "1")


def _graph():
    return planted_blocks_graph(
        blocks=6, per_block=15, p_in=0.5, inter_edges=40, seed=5
    )


def _assert_identical(ref, res):
    np.testing.assert_array_equal(ref.assignment, res.assignment)
    assert res.modularity == ref.modularity


class TestBitIdentical:
    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize(
        "variant", [Variant.BASELINE, Variant.THRESHOLD_CYCLING]
    )
    def test_variants_and_rank_counts(self, p, variant):
        g = _graph()
        cfg = LouvainConfig(variant=variant, seed=2)
        ref = run_louvain(g, p, cfg, machine=FREE)
        res = run_louvain(
            g, p, cfg.with_variant(variant, repartition="community"),
            machine=FREE,
        )
        _assert_identical(ref, res)

    @pytest.mark.parametrize(
        "toggles",
        [
            {"use_coloring": True},
            {"community_push_updates": True},
            {"ghost_delta_updates": True},
            {
                "use_coloring": True,
                "community_push_updates": True,
                "ghost_delta_updates": True,
            },
        ],
        ids=lambda t: "+".join(sorted(t)),
    )
    def test_composes_with_transport_knobs(self, toggles):
        g = _graph()
        ref = run_louvain(g, 4, LouvainConfig(**toggles), machine=FREE)
        res = run_louvain(
            g, 4,
            LouvainConfig(repartition="community", **toggles),
            machine=FREE,
        )
        _assert_identical(ref, res)

    def test_audited_under_invariant_validation(self):
        """The per-phase state audits must hold on the general layout."""
        g = _graph()
        cfg = LouvainConfig(
            repartition="community", validate_invariants=True
        )
        ref = run_louvain(g, 4, machine=FREE)
        _assert_identical(ref, run_louvain(g, 4, cfg, machine=FREE))

    def test_random_multigraphs(self):
        """Integer-weighted multigraphs: every float in the run is a sum
        of integers (< 2^53), so accumulation *grouping* — the one thing
        a layout change reorders — cannot affect a single bit.  (With
        arbitrary float weights the last ulp may drift, exactly as it
        does when the rank count changes.)"""
        from repro.graph import EdgeList

        for seed in range(6):
            rng = np.random.default_rng(seed)
            u = rng.integers(0, 30, 70)
            v = rng.integers(0, 30, 70)
            w = rng.integers(1, 5, 70).astype(np.float64)
            g = EdgeList.from_arrays(30, u, v, w).to_csr()
            for p in (2, 3):
                ref = run_louvain(g, p, machine=FREE)
                res = run_louvain(
                    g, p,
                    LouvainConfig(repartition="community"),
                    machine=FREE,
                )
                _assert_identical(ref, res)

    def test_tracked_assignments_match(self):
        g = _graph()
        ref = run_louvain(
            g, 4, LouvainConfig(track_assignments=True), machine=FREE
        )
        res = run_louvain(
            g, 4,
            LouvainConfig(track_assignments=True, repartition="community"),
            machine=FREE,
        )
        _assert_identical(ref, res)
        assert len(ref.phase_assignments) == len(res.phase_assignments)
        for a, b in zip(ref.phase_assignments, res.phase_assignments):
            np.testing.assert_array_equal(a, b)


class TestGhostFraction:
    def test_measured_on_every_distributed_phase(self):
        g = _graph()
        res = run_louvain(g, 2, machine=FREE)
        assert all(p.ghost_fraction >= 0.0 for p in res.phases)

    def test_coarse_phases_not_worse(self):
        """The whole point: community placement must not *increase* the
        achieved coarse-phase ghost fraction over the even split."""
        g = _graph()
        ref = run_louvain(g, 4, machine=FREE)
        res = run_louvain(
            g, 4, LouvainConfig(repartition="community"), machine=FREE
        )
        # Phase 0 runs on the identical input split either way.
        assert res.phases[0].ghost_fraction == ref.phases[0].ghost_fraction
        ref_coarse = [p.ghost_fraction for p in ref.phases[1:]]
        res_coarse = [p.ghost_fraction for p in res.phases[1:]]
        assert ref_coarse and len(ref_coarse) == len(res_coarse)
        assert sum(res_coarse) <= sum(ref_coarse)

    def test_single_rank_is_all_local(self):
        res = run_louvain(
            _graph(), 1, LouvainConfig(repartition="community"), machine=FREE
        )
        assert all(p.ghost_fraction == 0.0 for p in res.phases)


class TestCheckpointInterop:
    @pytest.mark.parametrize("p", [2, 4])
    def test_resume_matches_uninterrupted(self, tmp_path, p):
        """Kill a repartitioned run mid-phase, resume it, and match the
        uninterrupted run — the checkpoint round-trips the general
        (community-placed) layout bit for bit."""
        g = _graph()
        cfg = LouvainConfig(seed=1, repartition="community")
        ref = run_louvain(g, p, cfg, machine=FREE)
        d = str(tmp_path / "ck")
        with pytest.raises((RankFailedError, InjectedFault)):
            run_louvain(
                g, p, cfg,
                checkpoint_dir=d,
                fault_plan=FaultPlan(kills={p - 1: 40}),
                checkpoint_every_iterations=1,
                machine=FREE,
            )
        res = run_louvain(
            g, p, cfg, checkpoint_dir=d, resume=True, machine=FREE
        )
        _assert_identical(ref, res)

    def test_cross_mode_resume_refused(self, tmp_path):
        """A checkpoint stores the partitioned graph, so resuming under
        the other layout must be refused (repartition is in the cache
        key), not silently mis-assembled."""
        g = _graph()
        none_cfg = LouvainConfig(seed=1)
        comm_cfg = LouvainConfig(seed=1, repartition="community")
        d = str(tmp_path / "ck")
        with pytest.raises((RankFailedError, InjectedFault)):
            run_louvain(
                g, 2, none_cfg,
                checkpoint_dir=d,
                fault_plan=FaultPlan(kills={1: 40}),
                checkpoint_every_iterations=1,
                machine=FREE,
            )
        with pytest.raises(
            (ValueError, RankFailedError), match="resuming across configs"
        ):
            run_louvain(
                g, 2, comm_cfg, checkpoint_dir=d, resume=True, machine=FREE
            )
