"""Cross-feature matrix: every variant x extension combination must
produce a valid result AND pass the full distributed-state audits."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LouvainConfig, Variant, modularity, run_louvain
from repro.runtime import FREE

from .conftest import assert_valid_partition, random_graph

FEATURES = [
    {},
    {"use_coloring": True},
    {"ghost_delta_updates": True},
    {"use_neighbor_collectives": True},
    {"community_push_updates": True},
    {"use_coloring": True, "ghost_delta_updates": True},
    {"community_push_updates": True, "use_coloring": True},
    {"community_push_updates": True, "use_neighbor_collectives": True},
]


@pytest.mark.parametrize(
    "variant",
    [Variant.BASELINE, Variant.THRESHOLD_CYCLING, Variant.ET, Variant.ETC],
)
@pytest.mark.parametrize(
    "features", FEATURES, ids=lambda f: "+".join(sorted(f)) or "plain"
)
def test_variant_feature_matrix(planted_blocks, variant, features):
    cfg = LouvainConfig(
        variant=variant, alpha=0.5, validate_invariants=True, **features
    )
    r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
    assert_valid_partition(r.assignment, planted_blocks.num_vertices)
    assert r.modularity > 0.75
    assert r.modularity == pytest.approx(
        modularity(planted_blocks, r.assignment), abs=1e-9
    )


@pytest.mark.parametrize("features", FEATURES,
                         ids=lambda f: "+".join(sorted(f)) or "plain")
def test_features_do_not_change_baseline_results(planted_blocks, features):
    """Transport-level features (delta ghosts, neighbourhood collectives)
    must be bit-identical to the default transport; coloring is an
    algorithmic change and only needs equal-quality output."""
    base = run_louvain(planted_blocks, 4, machine=FREE)
    cfg = LouvainConfig(**features)
    r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
    if features.get("use_coloring"):
        assert r.modularity >= base.modularity - 0.02
    else:
        np.testing.assert_array_equal(base.assignment, r.assignment)


@given(
    params=st.tuples(
        st.integers(4, 24), st.integers(3, 60), st.integers(0, 2**16)
    ),
    p=st.integers(1, 4),
    feature=st.sampled_from(range(len(FEATURES))),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_graphs_random_features_audited(params, p, feature):
    """Hypothesis sweep: arbitrary multigraphs, any rank count, any
    feature set — the audits must hold and the result must be valid."""
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m, weighted=True)
    cfg = LouvainConfig(validate_invariants=True, **FEATURES[feature])
    r = run_louvain(g, p, cfg, machine=FREE)
    assert_valid_partition(r.assignment, n)
    assert r.modularity == pytest.approx(
        modularity(g, r.assignment), abs=1e-9
    )
