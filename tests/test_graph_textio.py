"""Unit tests for the text graph formats (SNAP, METIS) and conversion."""

import numpy as np
import pytest

from repro.graph import EdgeList, read_edgelist
from repro.graph.textio import (
    TextFormatError,
    convert_to_binary,
    read_metis,
    read_snap_edgelist,
    write_metis,
    write_snap_edgelist,
)


@pytest.fixture
def sample_el():
    return EdgeList.from_arrays(
        5, [0, 1, 2, 0], [1, 2, 3, 4], [1.0, 2.5, 1.0, 3.0]
    )


class TestSnapFormat:
    def test_roundtrip(self, tmp_path, sample_el):
        path = tmp_path / "g.txt"
        write_snap_edgelist(path, sample_el)
        el = read_snap_edgelist(path)
        np.testing.assert_array_equal(el.u, sample_el.u)
        np.testing.assert_allclose(el.w, sample_el.w)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% alt comment\n0 1\n1 2 2.5\n")
        el = read_snap_edgelist(path)
        assert el.num_edges == 2
        assert el.w[1] == 2.5

    def test_relabel_sparse_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 999\n")
        el = read_snap_edgelist(path)
        assert el.num_vertices == 3
        assert set(el.u) | set(el.v) == {0, 1, 2}

    def test_no_relabel(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        el = read_snap_edgelist(path, relabel=False)
        assert el.num_vertices == 6

    def test_duplicate_edges_merge(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.0\n1 0 2.0\n")
        el = read_snap_edgelist(path)
        assert el.num_edges == 1
        assert el.w[0] == 3.0

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(TextFormatError, match="expected"):
            read_snap_edgelist(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(TextFormatError):
            read_snap_edgelist(path)

    def test_negative_id(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("-1 2\n")
        with pytest.raises(TextFormatError, match="negative"):
            read_snap_edgelist(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        assert read_snap_edgelist(path).num_edges == 0


class TestMetisFormat:
    def test_roundtrip(self, tmp_path, sample_el):
        path = tmp_path / "g.graph"
        write_metis(path, sample_el)
        el = read_metis(path)
        assert el.num_vertices == sample_el.num_vertices
        assert el.num_edges == sample_el.num_edges
        np.testing.assert_allclose(np.sort(el.w), np.sort(sample_el.w))

    def test_unweighted(self, tmp_path):
        path = tmp_path / "g.graph"
        # Triangle, 1-based adjacency.
        path.write_text("3 3\n2 3\n1 3\n1 2\n")
        el = read_metis(path)
        assert el.num_edges == 3
        assert np.all(el.w == 1.0)

    def test_comments(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% comment\n2 1\n2\n1\n")
        assert read_metis(path).num_edges == 1

    def test_wrong_vertex_count(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 1\n2\n1\n")  # only 2 adjacency lines
        with pytest.raises(TextFormatError, match="adjacency lines"):
            read_metis(path)

    def test_wrong_edge_count(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(TextFormatError, match="edges"):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 1\n5\n1\n")
        with pytest.raises(TextFormatError, match="outside"):
            read_metis(path)

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.graph"
        path.write_text("")
        with pytest.raises(TextFormatError, match="empty"):
            read_metis(path)


class TestConvertToBinary:
    def test_snap_source(self, tmp_path, sample_el):
        src = tmp_path / "g.txt"
        dst = tmp_path / "g.bin"
        write_snap_edgelist(src, sample_el)
        convert_to_binary(src, dst)
        el = read_edgelist(dst)
        assert el.num_edges == sample_el.num_edges
        assert el.total_weight == pytest.approx(sample_el.total_weight)

    def test_metis_source(self, tmp_path, sample_el):
        src = tmp_path / "g.graph"
        dst = tmp_path / "g.bin"
        write_metis(src, sample_el)
        convert_to_binary(src, dst)
        el = read_edgelist(dst)
        assert el.num_edges == sample_el.num_edges

    def test_full_pipeline_same_communities(self, tmp_path, planted_blocks):
        # text -> binary -> distributed Louvain gives the same result as
        # running on the in-memory graph.
        from repro.core import run_louvain
        from repro.core.distlouvain import distributed_louvain
        from repro.graph import DistGraph, EdgeList
        from repro.runtime import FREE, run_spmd

        src = tmp_path / "g.txt"
        dst = str(tmp_path / "g.bin")
        write_snap_edgelist(src, EdgeList.from_csr(planted_blocks))
        convert_to_binary(src, dst)

        def prog(comm):
            dg = DistGraph.load_binary(comm, dst, partition="even_edge")
            return distributed_louvain(comm, dg)

        from_file = run_spmd(4, prog, machine=FREE, timeout=60.0).value
        direct = run_louvain(planted_blocks, 4, machine=FREE)
        np.testing.assert_array_equal(
            from_file.assignment, direct.assignment
        )
