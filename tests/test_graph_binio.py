"""Unit tests for the binary edge-list file format."""

import struct

import numpy as np
import pytest

from repro.graph import (
    BinFormatError,
    EdgeList,
    read_edgelist,
    read_edges_slice,
    read_header,
    write_edgelist,
)
from repro.graph.binio import HEADER_BYTES, RECORD_BYTES, slice_nbytes


@pytest.fixture
def sample(tmp_path):
    el = EdgeList.from_arrays(
        10, [0, 1, 2, 3, 4], [5, 6, 7, 8, 9], [1.0, 2.0, 3.0, 4.0, 5.0]
    )
    path = tmp_path / "g.bin"
    nbytes = write_edgelist(path, el)
    return el, path, nbytes


class TestWriteRead:
    def test_roundtrip(self, sample):
        el, path, _ = sample
        el2 = read_edgelist(path)
        assert el2.num_vertices == el.num_vertices
        np.testing.assert_array_equal(el2.u, el.u)
        np.testing.assert_array_equal(el2.v, el.v)
        np.testing.assert_allclose(el2.w, el.w)

    def test_written_size(self, sample):
        el, path, nbytes = sample
        assert nbytes == HEADER_BYTES + el.num_edges * RECORD_BYTES
        assert path.stat().st_size == nbytes

    def test_header(self, sample):
        _, path, _ = sample
        h = read_header(path)
        assert h.num_vertices == 10
        assert h.num_edges == 5

    def test_empty_edge_list(self, tmp_path):
        el = EdgeList.from_arrays(3, [], [])
        path = tmp_path / "empty.bin"
        write_edgelist(path, el)
        el2 = read_edgelist(path)
        assert el2.num_edges == 0
        assert el2.num_vertices == 3


class TestSliceReads:
    def test_slice_contents(self, sample):
        el, path, _ = sample
        u, v, w = read_edges_slice(path, 1, 4)
        np.testing.assert_array_equal(u, el.u[1:4])
        np.testing.assert_allclose(w, el.w[1:4])

    def test_slices_cover_file(self, sample):
        el, path, _ = sample
        h = read_header(path)
        seen = []
        for rank in range(3):
            lo, hi = h.record_range_for_rank(rank, 3)
            u, v, w = read_edges_slice(path, lo, hi)
            seen.extend(zip(u, v))
        assert seen == list(zip(el.u, el.v))

    def test_rank_ranges_partition_records(self, sample):
        _, path, _ = sample
        h = read_header(path)
        for nranks in (1, 2, 3, 5, 7):
            prev_hi = 0
            for rank in range(nranks):
                lo, hi = h.record_range_for_rank(rank, nranks)
                assert lo == prev_hi
                prev_hi = hi
            assert prev_hi == h.num_edges

    def test_rank_out_of_range(self, sample):
        _, path, _ = sample
        h = read_header(path)
        with pytest.raises(ValueError):
            h.record_range_for_rank(3, 3)

    def test_bad_slice_bounds(self, sample):
        _, path, _ = sample
        with pytest.raises(ValueError):
            read_edges_slice(path, 2, 99)

    def test_slice_nbytes(self):
        assert slice_nbytes(0, 10) == HEADER_BYTES + 10 * RECORD_BYTES


class TestMalformedFiles:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 24)
        with pytest.raises(BinFormatError, match="not a DLOUVAIN"):
            read_header(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"DLOUVAIN")
        with pytest.raises(BinFormatError):
            read_header(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "ver.bin"
        path.write_bytes(b"DLOUVAIN" + struct.pack("<qqq", 99, 1, 0))
        with pytest.raises(BinFormatError, match="version"):
            read_header(path)

    def test_negative_counts(self, tmp_path):
        path = tmp_path / "neg.bin"
        path.write_bytes(b"DLOUVAIN" + struct.pack("<qqq", 1, -5, 0))
        with pytest.raises(BinFormatError, match="negative"):
            read_header(path)

    def test_truncated_records(self, tmp_path, sample):
        el, path, _ = sample
        data = path.read_bytes()
        bad = tmp_path / "trunc.bin"
        bad.write_bytes(data[:-8])
        with pytest.raises(BinFormatError, match="truncated"):
            read_edges_slice(bad, 0, el.num_edges)
