"""SPMD103: id()-derived ordering is address-dependent."""


def order_partitions(parts):
    # CPython object addresses differ run to run and rank to rank.
    return sorted(parts, key=lambda p: id(p))


def index_by_identity(a, b):
    lookup = {id(a): a, id(b): b}
    return lookup
