"""Whole-file opt-out: nothing here may be reported."""
# spmdlint: skip-file


def guarded(comm, x):
    if comm.rank == 0:
        comm.bcast(x, root=0)
    return x


def iterate(comm, members):
    return [m for m in set(members)]
