"""SPMD104 near-miss: dict iteration with the order pinned."""


def pack_community_updates(comm, updates):
    out = []
    for vid, label in sorted(updates.items()):
        out.append((vid, label))
    return comm.allgather(out)


def total_degree(comm, degrees):
    acc = 0.0
    for d in sorted(degrees.values()):
        acc += d
    return comm.allreduce(acc)
