"""SPMD102: unseeded random number generators."""

import random

import numpy as np


def shuffle_vertices(order):
    rng = np.random.default_rng()  # no seed: OS entropy
    rng.shuffle(order)
    return order


def legacy_noise(n):
    return np.random.rand(n)  # unseeded global RandomState


def pick_candidate(candidates):
    random.shuffle(candidates)  # process-global stdlib generator
    return candidates[0]
