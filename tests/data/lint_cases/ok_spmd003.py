"""SPMD003 near-miss: literal tags that pair up across functions."""

EXCHANGE_TAG = 3


def push_boundary(comm, payload, neighbor):
    comm.send(payload, dest=neighbor, tag=3)


def pull_boundary(comm, neighbor):
    return comm.recv(source=neighbor, tag=3)


def symbolic_tags(comm, payload, neighbor):
    # Non-literal tags are out of scope for the matcher: quiet.
    comm.send(payload, dest=neighbor, tag=EXCHANGE_TAG)
    return comm.recv(source=neighbor, tag=EXCHANGE_TAG)
