"""SPMD302: a collective-guarding field hides behind a non-schedule-
safe cache-key exclusion.

``fast_exit`` selects whether the final barrier runs, so two configs
differing only in it execute different collective schedules — but its
exclusion is tagged ``perf``, which does not certify schedule safety.
"""

from dataclasses import dataclass

CACHE_KEY_FIELDS = frozenset({"tau"})

CACHE_KEY_EXCLUSIONS = {
    "fast_exit": "perf: skips the final consistency barrier",
}


@dataclass(frozen=True)
class LouvainConfig:
    tau: float = 1e-6
    fast_exit: bool = False


def detect(comm, config: LouvainConfig, values):
    total = comm.allreduce(values)
    if config.fast_exit:
        comm.barrier()
    return total
