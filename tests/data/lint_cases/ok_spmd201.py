"""SPMD201 near-misses: deterministic payload shapes."""


def share_frontier(comm, frontier, weights):
    # Sets may exist locally — only *sending* one is hazardous.
    local = set(frontier)
    comm.allreduce(sorted(local))
    comm.bcast([1, 2, 3], root=0)
    return comm.gather([w * 2 for w in weights], root=0)
