"""SPMD102 near-misses: seeded, reproducible randomness."""

import random

import numpy as np


def shuffle_vertices(order, seed):
    rng = np.random.default_rng(seed)
    rng.shuffle(order)
    return order


def fixed_noise(n):
    rng = np.random.default_rng(1234)
    return rng.random(n)


def pick_candidate(candidates, seed):
    local = random.Random(seed)
    local.shuffle(candidates)
    return candidates[0]
