"""SPMD104: dict iteration feeding SPMD state (insertion order)."""


def pack_community_updates(comm, updates):
    out = []
    # If ranks populated `updates` in different orders, the packed
    # payload (and anything order-sensitive downstream) diverges.
    for vid, label in updates.items():
        out.append((vid, label))
    return comm.allgather(out)


def total_degree(comm, degrees):
    acc = 0.0
    for d in degrees.values():
        acc += d
    return comm.allreduce(acc)
