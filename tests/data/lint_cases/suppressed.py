"""Suppression-comment behavior.

Two violations are silenced (targeted and bare ignore); the third uses
a non-matching rule id, so its finding must still be emitted.
"""


def guarded(comm, x):
    if comm.rank == 0:  # spmdlint: ignore[SPMD001] -- deliberate fixture
        comm.bcast(x, root=0)
    return x


def iterate(comm, members, gains):
    total = 0.0
    for vid in set(members):  # spmdlint: ignore
        total += gains[vid]
    return comm.allreduce(total)


def wrong_id(comm, x):
    if comm.rank == 0:  # spmdlint: ignore[SPMD104] -- wrong rule: no effect
        comm.bcast(x, root=0)
    return x
