"""SPMD005: hand-maintained helper catalog drifted both ways.

``retired_helper`` no longer exists, and ``fresh_helper`` (which
transitively reaches an allreduce) is not listed.
"""

COLLECTIVE_HELPERS = frozenset(
    {
        "retired_helper",
    }
)


def fresh_helper(comm, x):
    return comm.allreduce(x)
