"""SPMD004: divergence only visible through the call graph.

``_exchange`` is a module-local helper the hand-maintained
``COLLECTIVE_HELPERS`` catalog knows nothing about, so the
intraprocedural SPMD001 cannot see a collective under the rank guard.
The footprint summary inlines it and catches the config-guarded
rank-variant schedule.
"""


def _exchange(comm, values):
    return comm.allreduce(values)


def sweep(comm, config, values):
    if config.use_coloring:
        # Rank-dependent: odd ranks never enter the allreduce hidden
        # inside _exchange.
        if comm.rank % 2 == 0:
            values = _exchange(comm, values)
    return values
