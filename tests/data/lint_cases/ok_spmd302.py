"""SPMD302 near-miss: the guarding field's exclusion is schedule-safe.

``audit_pass`` adds a replicated verification barrier; every rank sees
the same config, and the ``audit`` kind documents that the extra
collectives never change detection results.
"""

from dataclasses import dataclass

CACHE_KEY_FIELDS = frozenset({"tau"})

CACHE_KEY_EXCLUSIONS = {
    "audit_pass": "audit: replicated verification only, results unchanged",
}


@dataclass(frozen=True)
class LouvainConfig:
    tau: float = 1e-6
    audit_pass: bool = False


def detect(comm, config: LouvainConfig, values):
    total = comm.allreduce(values)
    if config.audit_pass:
        comm.barrier()
    return total
