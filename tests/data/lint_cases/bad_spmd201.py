"""SPMD201: payloads the wire-size model cannot size deterministically."""


def share_frontier(comm, frontier, weights):
    # Sets pack in arbitrary order; generators are consumed by the
    # size estimate before the receiver ever sees them.
    comm.allreduce(set(frontier))
    comm.bcast({1, 2, 3}, root=0)
    return comm.gather((w * 2 for w in weights), root=0)
