"""SPMD103 near-misses: ordering by stable, value-derived keys."""


def order_partitions(parts):
    return sorted(parts, key=lambda p: p.part_id)


def order_by_length(chunks):
    return sorted(chunks, key=len)


def index_by_vertex(a, b):
    lookup = {a.vid: a, b.vid: b}
    return lookup
