"""SPMD001 near-misses: rank-dependent code that keeps the schedule."""

import numpy as np


def rooted_bcast_idiom(comm, seq):
    # The legit rooted-collective idiom: every rank calls bcast; only
    # the deposited value is rank-dependent (IfExp, not a branch).
    return comm.bcast(seq if comm.rank == 0 else None, root=0)


def balanced_branches(comm, x):
    # Both branches make the same collective calls, in the same order.
    if comm.rank == 0:
        y = comm.allreduce(x)
    else:
        y = comm.allreduce(x)
    return y


def replicated_condition(comm, config, values):
    # The condition is config-derived, identical on every rank.
    if config.use_extra_reduction:
        return comm.allreduce(values.sum())
    return values.sum()


def rank_local_work_only(comm, values):
    # Rank-dependent branch with no collectives inside: fine.
    if comm.rank == 0:
        print("rank 0 reporting", values.sum())
    total = comm.allreduce(values.sum())
    return total


def uniform_trip_count(comm, rounds):
    acc = 0.0
    for _ in range(rounds):
        acc += comm.allreduce(1.0)
    return acc
