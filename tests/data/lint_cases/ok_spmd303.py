"""SPMD303 near-miss: fields, properties, and methods all count as
declared surface."""

from dataclasses import dataclass


@dataclass(frozen=True)
class LouvainConfig:
    tau: float = 1e-6

    @property
    def strict(self) -> bool:
        return self.tau < 1e-9

    def cache_key(self) -> str:
        return str(self.tau)


def detect(comm, config: LouvainConfig, values):
    if config.strict:
        values = values * config.tau
    key = config.cache_key()
    total = comm.allreduce(values)
    return total, key
