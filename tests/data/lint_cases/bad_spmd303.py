"""SPMD303: a typoed config attribute drifts out of the analysis.

``use_colouring`` (British spelling) is not a field of the declared
config, so the guard silently reads a nonexistent attribute — at
runtime an AttributeError, and statically a hole in the schedule
matrix.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class LouvainConfig:
    tau: float = 1e-6
    use_coloring: bool = False


def detect(comm, config: LouvainConfig, values):
    total = comm.allreduce(values)
    if config.use_colouring:
        total = -total
    return total
