"""SPMD301 near-miss: key fields and exclusions partition exactly."""

from dataclasses import dataclass

CACHE_KEY_FIELDS = frozenset({"tau", "resolution"})

CACHE_KEY_EXCLUSIONS = {
    "use_push": "transport: assignments are bit-identical either way",
    "verbose": "audit: extra logging, no effect on results",
}


@dataclass(frozen=True)
class LouvainConfig:
    tau: float = 1e-6
    resolution: float = 1.0
    use_push: bool = False
    verbose: bool = False
