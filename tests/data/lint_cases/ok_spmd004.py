"""SPMD004 near-miss: the same helper shape, but replicated guards.

A config flag is identical on every rank, so alternating the inlined
collective on it changes the schedule *per config*, never *per rank* —
the schedule matrix records two variants and neither diverges.
"""


def _exchange(comm, values):
    return comm.allreduce(values)


def sweep(comm, config, values):
    if config.use_coloring:
        values = _exchange(comm, values)
    return values
