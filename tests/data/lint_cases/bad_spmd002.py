"""SPMD002: conditional early return skipping later collectives."""


def local_early_exit(comm, local_work):
    # len(local_work) is rank-local: a rank with no work returns here
    # while the others enter the allreduce below and hang.
    if len(local_work) == 0:
        return 0.0
    return comm.allreduce(local_work.sum())


def nested_conditional_return(comm, values, threshold):
    if values is not None:
        if values.max() < threshold:
            return None
    total = comm.allreduce(values.sum())
    comm.barrier()
    return total
