"""SPMD001: collectives under rank-dependent control flow."""

import numpy as np


def rank_guarded_bcast(comm, model):
    # Only rank 0 enters the bcast; every other rank never makes the
    # matching call -> the collective can never complete.
    if comm.rank == 0:
        comm.bcast(model, root=0)
    else:
        model = None
    return model


def tainted_condition(comm, values):
    me = comm.rank
    low_half = me < comm.size // 2
    if low_half:
        total = comm.allreduce(values.sum())
    else:
        total = 0.0
    return total


def rank_dependent_trip_count(comm, chunks):
    acc = 0.0
    for _ in range(comm.rank):
        acc += comm.allreduce(1.0)
    return acc


def owner_guarded_gather(comm, dg, item):
    if dg.owner_of(item) == comm.rank:
        return comm.gather(item, root=0)
    return None


def unbalanced_collective_mix(comm, x):
    if comm.rank % 2 == 0:
        comm.barrier()
        y = comm.allreduce(x)
    else:
        y = comm.allreduce(x)
    return y
