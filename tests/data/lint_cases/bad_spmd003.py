"""SPMD003: literal send/recv tags with no matching peer call."""


def push_boundary(comm, payload, neighbor):
    # Tag 7 is never received anywhere in the linted code.
    comm.send(payload, dest=neighbor, tag=7)


def pull_boundary(comm, neighbor):
    # Tag 9 is never sent anywhere in the linted code.
    return comm.recv(source=neighbor, tag=9)
