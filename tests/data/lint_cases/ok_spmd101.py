"""SPMD101 near-misses: sets used safely."""


def accumulate_moves(comm, moved_ids, gains):
    total = 0.0
    # sorted() pins the order before iterating.
    for vid in sorted(set(moved_ids)):
        total += gains[vid]
    return comm.allreduce(total)


def membership_only(comm, moved, candidates):
    moved_set = set(moved)
    # Membership tests on sets are fine; only iteration is hazardous.
    kept = [c for c in candidates if c not in moved_set]
    return comm.allgather(kept)
