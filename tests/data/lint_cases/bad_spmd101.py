"""SPMD101: iteration over sets has no deterministic order."""


def accumulate_moves(comm, moved_ids, gains):
    total = 0.0
    # Set iteration order is arbitrary: the float accumulation order
    # (and thus the rounded result) differs between runs/ranks.
    for vid in set(moved_ids):
        total += gains[vid]
    return comm.allreduce(total)


def frontier_union(comm, local_ids, ghost_ids):
    # Union of two set() calls is still a set expression.
    out = [vid * 2 for vid in set(local_ids) | set(ghost_ids)]
    return comm.allgather(out)
