"""SPMD002 near-misses: early exits that cannot split the schedule."""


def collective_decision(comm, local_work):
    # The exit is decided by an allreduce: every rank takes the same
    # branch, so the skipped collectives are skipped everywhere.
    empty_everywhere = comm.allreduce(len(local_work) == 0, op="land")
    if empty_everywhere:
        return 0.0
    return comm.allreduce(local_work.sum())


def replicated_flag(comm, values):
    converged = comm.allreduce(float(values.sum())) < 1e-9
    if converged:
        return None
    comm.barrier()
    return values


def guard_raises_instead(comm, values, n_expected):
    # A conditional raise is fine: the failing rank aborts the world,
    # it does not silently leave the collective understaffed.
    if len(values) != n_expected:
        raise ValueError("bad input shape")
    return comm.allreduce(values.sum())


def tail_return_only(comm, values):
    total = comm.allreduce(values.sum())
    if total < 0:
        return 0.0
    return total
