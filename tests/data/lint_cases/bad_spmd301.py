"""SPMD301: cache-key partition drift on the config declaration.

Four distinct violations: an undocumented field, a field in both sets,
a stale name in the key set, and an exclusion reason without a
``<kind>:`` tag.
"""

from dataclasses import dataclass

CACHE_KEY_FIELDS = frozenset({"tau", "resolution", "ghost_mode"})

CACHE_KEY_EXCLUSIONS = {
    "verbose": "forgot the kind separator entirely",
    "tau": "audit: but tau is already in the key set",
}


@dataclass(frozen=True)
class LouvainConfig:
    tau: float = 1e-6
    resolution: float = 1.0
    use_push: bool = False
    verbose: bool = False
