"""SPMD005 near-miss: the catalog matches the derived closure exactly."""

COLLECTIVE_HELPERS = frozenset(
    {
        "fresh_helper",
        "outer_helper",
    }
)


def fresh_helper(comm, x):
    return comm.allreduce(x)


def outer_helper(comm, x):
    # In the catalog via the transitive closure, not a direct call.
    return fresh_helper(comm, x) + 1.0
