"""spmdlint: fixtures trigger, near-misses stay quiet, CLI gates."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    SEVERITIES,
    SEVERITY_ORDER,
    lint_paths,
    rule,
)
from repro.analysis.rules import COLLECTIVE_METHODS
from repro.cli import main as cli_main

CASES_DIR = Path(__file__).parent / "data" / "lint_cases"
REPO_ROOT = Path(__file__).parent.parent

RULE_IDS = (
    "SPMD001",
    "SPMD002",
    "SPMD003",
    "SPMD004",
    "SPMD005",
    "SPMD101",
    "SPMD102",
    "SPMD103",
    "SPMD104",
    "SPMD201",
    "SPMD301",
    "SPMD302",
    "SPMD303",
)


def rules_found(path: Path) -> set[str]:
    return {f.rule for f in lint_paths([path]).findings}


class TestFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_triggers_exactly_its_rule(self, rule_id):
        path = CASES_DIR / f"bad_{rule_id.lower()}.py"
        assert rules_found(path) == {rule_id}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_near_miss_is_quiet(self, rule_id):
        path = CASES_DIR / f"ok_{rule_id.lower()}.py"
        assert rules_found(path) == set()

    def test_findings_carry_location_and_severity(self):
        result = lint_paths([CASES_DIR / "bad_spmd001.py"])
        assert result.files_checked == 1
        for f in result.findings:
            assert f.rule == "SPMD001"
            assert f.severity == "error"
            assert f.line > 0
            assert str(f.path).endswith("bad_spmd001.py")
            assert "rank-dependent" in f.message
        formatted = result.findings[0].format()
        assert "bad_spmd001.py" in formatted
        assert "SPMD001 [error]" in formatted


class TestSuppression:
    def test_targeted_and_bare_ignores_silence_matching_rules(self):
        # suppressed.py has three violations: two silenced, one with a
        # non-matching rule id that must still be reported.
        result = lint_paths([CASES_DIR / "suppressed.py"])
        assert [f.rule for f in result.findings] == ["SPMD001"]

    def test_skip_file_silences_everything(self):
        assert rules_found(CASES_DIR / "skipped_file.py") == set()


class TestShippedTree:
    def test_src_repro_lints_clean(self):
        result = lint_paths([REPO_ROOT / "src" / "repro"])
        assert result.parse_errors == []
        assert result.files_checked > 40
        assert result.findings == []

    def test_widened_tree_lints_clean(self):
        # The CI gate: benchmarks, examples, and the test suite itself
        # (fault-injection fixtures carry explicit suppressions).
        result = lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "examples",
                REPO_ROOT / "tests",
            ],
            exclude=["tests/data/*"],
        )
        assert result.parse_errors == []
        assert result.findings == []

    def test_declared_catalog_matches_derived_closure(self):
        # COLLECTIVE_HELPERS is machine-derived: zero stale entries,
        # zero missing ones.  Regenerate with `lint --dump-helpers`.
        from repro.analysis.rules import COLLECTIVE_HELPERS
        from repro.analysis.spmdlint import build_program

        program = build_program([REPO_ROOT / "src" / "repro"])
        derived = program.callgraph.derive_collective_helpers()
        assert sorted(derived) == sorted(COLLECTIVE_HELPERS)


class TestEngine:
    def test_select_and_ignore(self):
        bad = sorted(CASES_DIR.glob("bad_*.py"))
        only = lint_paths(bad, select=["SPMD101"])
        assert {f.rule for f in only.findings} == {"SPMD101"}
        without = lint_paths(bad, ignore=["SPMD101"])
        assert "SPMD101" not in {f.rule for f in without.findings}

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="SPMD999"):
            lint_paths([CASES_DIR], select=["SPMD999"])

    def test_parse_error_is_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        result = lint_paths([broken])
        assert result.files_checked == 0
        assert len(result.parse_errors) == 1
        assert "broken.py" in result.parse_errors[0]

    def test_json_output_structure(self):
        result = lint_paths([CASES_DIR / "bad_spmd102.py"])
        doc = json.loads(result.to_json())
        assert doc["summary"]["total"] == len(doc["findings"]) == 3
        assert doc["summary"]["by_severity"] == {"error": 3}
        assert doc["summary"]["files_checked"] == 1
        first = doc["findings"][0]
        assert set(first) == {
            "rule", "severity", "path", "line", "col", "message",
        }

    def test_findings_sorted_by_location(self):
        result = lint_paths(sorted(CASES_DIR.glob("bad_*.py")))
        keys = [(f.path, f.line, f.col) for f in result.findings]
        assert keys == sorted(keys)

    def test_exclude_globs(self):
        full = lint_paths([CASES_DIR])
        filtered = lint_paths(
            [CASES_DIR], exclude=["bad_*.py", "suppressed.py"]
        )
        assert filtered.files_checked < full.files_checked
        assert filtered.findings == []

    def test_github_format(self):
        result = lint_paths([CASES_DIR / "bad_spmd001.py"])
        out = result.format_github()
        assert "::error file=" in out
        assert "title=SPMD001" in out
        # The trailing summary line matches the text format's.
        assert out.splitlines()[-1] == result.format_text().splitlines()[-1]


class TestRegistry:
    def test_catalog_covers_all_fixture_rules(self):
        assert set(RULE_IDS) <= set(RULES)
        for r in RULES.values():
            assert r.severity in SEVERITIES
            assert r.scope in ("function", "module", "program")
            assert r.summary

    def test_severity_order_is_monotone(self):
        assert SEVERITY_ORDER["info"] < SEVERITY_ORDER["warning"]
        assert SEVERITY_ORDER["warning"] < SEVERITY_ORDER["error"]

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("SPMD001", "error", "clash")(lambda fn: iter(()))

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            rule("SPMD998", "fatal", "bad severity")(lambda fn: iter(()))

    def test_collective_method_table_matches_runtime(self):
        from repro.runtime.comm import Communicator

        for name in COLLECTIVE_METHODS:
            assert hasattr(Communicator, name), name


class TestCli:
    def test_fail_on_gating(self, capsys):
        bad = str(CASES_DIR / "bad_spmd001.py")
        assert cli_main(["lint", bad, "--fail-on", "error"]) == 1
        assert cli_main(["lint", bad, "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_warning_threshold(self, capsys):
        bad = str(CASES_DIR / "bad_spmd002.py")  # SPMD002 is a warning
        assert cli_main(["lint", bad, "--fail-on", "warning"]) == 1
        assert cli_main(["lint", bad, "--fail-on", "error"]) == 0
        capsys.readouterr()

    def test_clean_tree_exits_zero(self, capsys):
        target = str(REPO_ROOT / "src" / "repro")
        assert cli_main(["lint", target, "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_json_format(self, capsys):
        bad = str(CASES_DIR / "bad_spmd101.py")
        assert cli_main(["lint", bad, "--format", "json",
                         "--fail-on", "never"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["total"] == 2

    def test_select_and_ignore_flags(self, capsys):
        bad = str(CASES_DIR / "bad_spmd201.py")
        assert cli_main(["lint", bad, "--select", "SPMD104",
                         "--fail-on", "warning"]) == 0
        assert cli_main(["lint", bad, "--ignore", "SPMD201",
                         "--fail-on", "warning"]) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, capsys):
        bad = str(CASES_DIR / "bad_spmd001.py")
        assert cli_main(["lint", bad, "--select", "SPMD999"]) == 2
        assert "SPMD999" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["lint", ".", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_github_format_flag(self, capsys):
        bad = str(CASES_DIR / "bad_spmd001.py")
        assert cli_main(["lint", bad, "--format", "github",
                         "--fail-on", "never"]) == 0
        assert "::error file=" in capsys.readouterr().out

    def test_dump_helpers(self, capsys):
        ok = str(CASES_DIR / "ok_spmd005.py")
        assert cli_main(["lint", ok, "--dump-helpers"]) == 0
        assert capsys.readouterr().out.split() == [
            "fresh_helper",
            "outer_helper",
        ]

    def test_schedule_report(self, tmp_path, capsys):
        target = str(REPO_ROOT / "src" / "repro")
        out_file = tmp_path / "schedule-report.json"
        assert cli_main(["lint", target, "--schedule-report",
                         str(out_file), "--fail-on", "error"]) == 0
        capsys.readouterr()
        doc = json.loads(out_file.read_text())
        assert doc["entry"] == "distributed_louvain"
        assert doc["summary"]["divergence_free"] is True
        assert doc["summary"]["variants"] >= 5
        for row in doc["rows"]:
            assert row["divergences"] == []
            assert row["collectives"]


class TestToolingConfig:
    """The satellite lint gate is config-only locally (ruff/mypy run in
    CI); pin the wiring so it cannot silently disappear."""

    def test_pyproject_has_ruff_and_mypy_sections(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.ruff]" in text
        assert "[tool.mypy]" in text
        assert 'extend-exclude = ["tests/data"]' in text
        assert "repro.analysis.*" in text
        # The whole-program analysis modules are held to strict checks.
        assert "repro.analysis.callgraph" in text
        assert "repro.analysis.summaries" in text
        assert "disallow_untyped_defs = true" in text

    def test_ci_runs_lint_job(self):
        text = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "repro-louvain lint src/ benchmarks/ examples/ tests/" in text
        assert "--exclude 'tests/data/*'" in text
        assert "--schedule-report schedule-report.json" in text
        assert "--fail-on error" in text
        assert "name: schedule-report" in text
        assert "ruff check ." in text
        assert "mypy -p repro.analysis" in text
