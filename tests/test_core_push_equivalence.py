"""Owner-push community exchange must be bit-identical to the pull protocol.

``community_push_updates`` is a pure transport optimisation: the same
``(a_c, |c|)`` values must reach the same consumers in the same float
accumulation order, so assignments and modularity match the pull
protocol exactly — across variants, rank counts, the other transport
knobs, and checkpoint/resume.
"""

import numpy as np
import pytest

from repro.core import LouvainConfig, Variant, run_louvain
from repro.resilience import FaultPlan
from repro.runtime import FREE, InjectedFault, RankFailedError

from .conftest import planted_blocks_graph, random_graph


@pytest.fixture(autouse=True)
def _verify_schedule(monkeypatch):
    """Run this suite under the dynamic collective-schedule verifier so
    a push/pull schedule divergence fails at its first mismatched op
    instead of on end-state mismatch."""
    monkeypatch.setenv("REPRO_VERIFY_SCHEDULE", "1")


def _graph():
    return planted_blocks_graph(
        blocks=6, per_block=15, p_in=0.5, inter_edges=40, seed=5
    )


def _assert_identical(ref, res):
    np.testing.assert_array_equal(ref.assignment, res.assignment)
    assert res.modularity == ref.modularity


class TestBitIdentical:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    @pytest.mark.parametrize(
        "variant",
        [
            Variant.BASELINE,
            Variant.ET,
            Variant.THRESHOLD_CYCLING,
            Variant.ETC,
        ],
    )
    def test_variants_and_rank_counts(self, p, variant):
        g = _graph()
        cfg = LouvainConfig(variant=variant, alpha=0.25, seed=2)
        ref = run_louvain(g, p, cfg, machine=FREE)
        res = run_louvain(
            g, p, cfg.with_variant(variant, community_push_updates=True),
            machine=FREE,
        )
        _assert_identical(ref, res)

    @pytest.mark.parametrize(
        "toggles",
        [
            {"use_coloring": True},
            {"use_neighbor_collectives": True},
            {"ghost_delta_updates": True},
            {
                "use_coloring": True,
                "use_neighbor_collectives": True,
                "ghost_delta_updates": True,
            },
        ],
        ids=lambda t: "+".join(sorted(t)),
    )
    def test_composes_with_other_transport_knobs(self, toggles):
        g = _graph()
        ref = run_louvain(g, 4, LouvainConfig(**toggles), machine=FREE)
        res = run_louvain(
            g, 4,
            LouvainConfig(community_push_updates=True, **toggles),
            machine=FREE,
        )
        _assert_identical(ref, res)

    def test_audited_under_invariant_validation(self):
        """The per-phase state audits must hold with the push cache."""
        g = _graph()
        cfg = LouvainConfig(
            community_push_updates=True, validate_invariants=True
        )
        ref = run_louvain(g, 4, machine=FREE)
        _assert_identical(ref, run_louvain(g, 4, cfg, machine=FREE))

    def test_random_multigraphs(self):
        for seed in range(6):
            g = random_graph(
                np.random.default_rng(seed), 30, 70, weighted=True
            )
            for p in (2, 3):
                ref = run_louvain(g, p, machine=FREE)
                res = run_louvain(
                    g, p,
                    LouvainConfig(community_push_updates=True),
                    machine=FREE,
                )
                _assert_identical(ref, res)


class TestCheckpointInterop:
    @pytest.mark.parametrize("p", [2, 4])
    def test_resume_matches_pull_reference(self, tmp_path, p):
        """Kill a push-protocol run mid-phase, resume it, and match the
        uninterrupted *pull* run — resume rebuilds the subscription
        cache via a fresh cold pull, so nothing may drift."""
        g = _graph()
        pull_cfg = LouvainConfig(variant=Variant.ET_TC, alpha=0.25, seed=1)
        push_cfg = LouvainConfig(
            variant=Variant.ET_TC,
            alpha=0.25,
            seed=1,
            community_push_updates=True,
        )
        ref = run_louvain(g, p, pull_cfg, machine=FREE)
        d = str(tmp_path / "ck")
        with pytest.raises((RankFailedError, InjectedFault)):
            run_louvain(
                g, p, push_cfg,
                checkpoint_dir=d,
                fault_plan=FaultPlan(kills={p - 1: 40}),
                checkpoint_every_iterations=1,
                machine=FREE,
            )
        res = run_louvain(
            g, p, push_cfg, checkpoint_dir=d, resume=True, machine=FREE
        )
        _assert_identical(ref, res)

    def test_pull_checkpoint_resumes_under_push(self, tmp_path):
        """A checkpoint written by the pull protocol restores cleanly
        into a push-configured run (the cache is rebuilt per phase, not
        checkpointed)."""
        g = _graph()
        pull_cfg = LouvainConfig(seed=1)
        push_cfg = LouvainConfig(seed=1, community_push_updates=True)
        ref = run_louvain(g, 2, pull_cfg, machine=FREE)
        d = str(tmp_path / "ck")
        with pytest.raises((RankFailedError, InjectedFault)):
            run_louvain(
                g, 2, pull_cfg,
                checkpoint_dir=d,
                fault_plan=FaultPlan(kills={1: 40}),
                checkpoint_every_iterations=1,
                machine=FREE,
            )
        res = run_louvain(
            g, 2, push_cfg, checkpoint_dir=d, resume=True, machine=FREE
        )
        _assert_identical(ref, res)


class TestTraffic:
    def test_steady_state_drops_alltoalls(self):
        """Per steady-state round: pull pays 3 alltoalls (2 fetch +
        1 delta), push pays 1 fused exchange round trip."""
        g = _graph()
        ref = run_louvain(g, 4, machine=FREE)
        res = run_louvain(
            g, 4, LouvainConfig(community_push_updates=True), machine=FREE
        )
        pull_colls = ref.trace.collective_counts()
        push_colls = res.trace.collective_counts()
        assert push_colls.get("exchange_roundtrip", 0) > 0
        assert push_colls.get("alltoall", 0) < pull_colls["alltoall"]
        # Fetch + delta legs vanish from the alltoall count: what is
        # left (ghost refresh etc.) plus one round trip per round must
        # stay below pull's schedule.
        assert (
            push_colls.get("alltoall", 0)
            + push_colls.get("exchange_roundtrip", 0)
            < pull_colls["alltoall"]
        )

    def test_community_comm_time_not_worse(self):
        g = _graph()
        ref = run_louvain(g, 4, machine=FREE)
        res = run_louvain(
            g, 4, LouvainConfig(community_push_updates=True), machine=FREE
        )
        pull_s = ref.trace.seconds_by_category().get("community_comm", 0.0)
        push_s = res.trace.seconds_by_category().get("community_comm", 0.0)
        assert push_s <= pull_s
