"""Unit tests for sub-communicators (MPI_Comm_split semantics)."""

import numpy as np
import pytest

from repro.runtime import FREE, run_spmd


def spmd(size, fn, **kw):
    kw.setdefault("machine", FREE)
    kw.setdefault("timeout", 10.0)
    return run_spmd(size, fn, **kw)


class TestSplit:
    def test_group_membership_and_ranks(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.size, sub.rank, sub.members

        r = spmd(6, prog)
        # Even ranks form group [0,2,4]; odd ranks [1,3,5].
        assert r.values[0] == (3, 0, [0, 2, 4])
        assert r.values[2] == (3, 1, [0, 2, 4])
        assert r.values[5] == (3, 2, [1, 3, 5])

    def test_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reversed order
            return sub.rank

        r = spmd(4, prog)
        assert r.values == [3, 2, 1, 0]

    def test_subgroup_allreduce_independent(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.allreduce(comm.rank)

        r = spmd(6, prog)
        assert r.values[0] == r.values[2] == r.values[4] == 0 + 2 + 4
        assert r.values[1] == r.values[3] == r.values[5] == 1 + 3 + 5

    def test_subgroup_p2p(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)  # pairs
            other = 1 - sub.rank
            sub.send(f"from-{comm.rank}", other)
            return sub.recv(other)

        r = spmd(4, prog)
        assert r.values == ["from-1", "from-0", "from-3", "from-2"]

    def test_subgroup_p2p_isolated_from_world(self):
        # Same (source, tag) on world and subcomm must not collide.
        def prog(comm):
            sub = comm.split(color=0)
            if comm.rank == 0:
                comm.send("world", 1, tag=5)
                sub.send("sub", 1, tag=5)
                return None
            if comm.rank == 1:
                got_sub = sub.recv(0, tag=5)
                got_world = comm.recv(0, tag=5)
                return got_sub, got_world
            return None

        r = spmd(3, prog)
        assert r.values[1] == ("sub", "world")

    def test_singleton_groups(self):
        def prog(comm):
            sub = comm.split(color=comm.rank)  # every rank alone
            return sub.size, sub.allreduce(99)

        r = spmd(3, prog)
        assert r.values == [(1, 99)] * 3

    def test_nested_collectives_with_world(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            partial = sub.allreduce(comm.rank + 1)
            return comm.allreduce(partial)

        r = spmd(4, prog)
        # Groups: evens sum 1+3=4, odds sum 2+4=6; world allreduce of
        # per-rank partials = 4+6+4+6 = 20.
        assert r.values == [20] * 4

    def test_subgroup_bcast_and_gather(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            value = sub.bcast(f"g{comm.rank % 2}" if sub.rank == 0 else None)
            gathered = sub.gather(comm.rank, root=0)
            return value, gathered

        r = spmd(4, prog)
        assert r.values[0] == ("g0", [0, 2])
        assert r.values[1] == ("g1", None) or r.values[1][0] == "g1"

    def test_clock_shared_with_parent(self):
        from repro.runtime import CORI_HASWELL

        def prog(comm):
            sub = comm.split(color=0)
            before = comm.clock
            sub.allreduce(np.zeros(1000))
            return comm.clock > before

        r = run_spmd(3, prog, machine=CORI_HASWELL, timeout=10.0)
        assert all(r.values)

    def test_bad_tag_rejected(self):
        from repro.runtime import RankFailedError

        def prog(comm):
            sub = comm.split(color=0)
            sub.send(1, 0, tag=-1)

        with pytest.raises(RankFailedError):
            spmd(2, prog)
