"""Unit tests for graph statistics helpers."""

import numpy as np

from repro.graph import (
    CSRGraph,
    EdgeList,
    connected_components,
    graph_stats,
    is_connected,
)


class TestGraphStats:
    def test_basic_counts(self, two_cliques):
        s = graph_stats(two_cliques)
        assert s.num_vertices == 10
        assert s.num_edges == 21
        assert s.num_isolated == 0
        assert s.num_self_loops == 0

    def test_star_degrees(self, star_graph):
        s = graph_stats(star_graph)
        assert s.max_degree == 8
        assert s.min_degree == 1
        assert s.degree_cv > 0

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(5, [0], [1])
        assert graph_stats(g).num_isolated == 3

    def test_self_loop_count(self):
        g = CSRGraph.from_edges(3, [0, 1], [0, 2])
        assert graph_stats(g).num_self_loops == 1

    def test_empty_graph(self):
        s = graph_stats(CSRGraph.empty(0))
        assert s.num_vertices == 0
        assert s.mean_degree == 0.0

    def test_format_readable(self, two_cliques):
        text = graph_stats(two_cliques).format()
        assert "n=10" in text


class TestComponents:
    def test_connected_graph(self, two_cliques):
        assert is_connected(two_cliques)
        assert np.all(connected_components(two_cliques) == 0)

    def test_disconnected(self):
        g = EdgeList.from_arrays(6, [0, 1, 3, 4], [1, 2, 4, 5]).to_csr()
        labels = connected_components(g)
        assert len(np.unique(labels)) == 2
        assert not is_connected(g)

    def test_isolated_are_own_components(self):
        g = CSRGraph.empty(4)
        assert len(np.unique(connected_components(g))) == 4

    def test_empty(self):
        assert is_connected(CSRGraph.empty(0))
