"""Unit tests for the SPMD executor: results, failures, determinism."""

import numpy as np
import pytest

from repro.runtime import (
    FREE,
    RankAborted,
    RankFailedError,
    run_spmd,
)


class TestRunSPMD:
    def test_returns_per_rank_values(self):
        r = run_spmd(4, lambda comm: comm.rank ** 2, machine=FREE)
        assert r.values == [0, 1, 4, 9]
        assert r.size == 4

    def test_single_rank_fast_path(self):
        r = run_spmd(1, lambda comm: "solo", machine=FREE)
        assert r.value == "solo"
        assert r.trace.size == 1

    def test_single_rank_exception_propagates_natively(self):
        with pytest.raises(ZeroDivisionError):
            run_spmd(1, lambda comm: 1 // 0, machine=FREE)

    def test_extra_args_passed_through(self):
        def prog(comm, data, offset=0):
            return data[comm.rank] + offset

        r = run_spmd(3, prog, [10, 20, 30], machine=FREE, offset=5)
        assert r.values == [15, 25, 35]

    def test_invalid_world_size(self):
        with pytest.raises(Exception):
            run_spmd(0, lambda comm: None, machine=FREE)

    def test_elapsed_is_max_clock(self):
        from repro.runtime import CORI_HASWELL

        def prog(comm):
            comm.charge_compute(1e6 * (comm.rank + 1))
            return comm.clock

        r = run_spmd(3, prog, machine=CORI_HASWELL, timeout=10.0)
        assert r.elapsed == pytest.approx(max(r.values))


class TestFailurePropagation:
    def test_single_failing_rank_reported(self):
        def prog(comm):
            # Fault injection: rank 2 dies, the rest must unblock.
            if comm.rank == 2:  # spmdlint: ignore[SPMD004]
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RankFailedError) as ei:
            run_spmd(4, prog, machine=FREE, timeout=5.0)
        err = ei.value
        assert err.rank == 2
        assert isinstance(err.causes[2], ValueError)

    def test_victim_ranks_not_blamed(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("primary")
            comm.recv(0)  # victims block here and get aborted

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, machine=FREE, timeout=5.0)
        # Only the primary failure is reported, not the RankAborted victims.
        assert set(ei.value.causes) == {0}

    def test_multiple_primary_failures_all_reported(self):
        def prog(comm):
            raise KeyError(f"rank-{comm.rank}")

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, machine=FREE, timeout=5.0)
        assert set(ei.value.causes) == {0, 1, 2}

    def test_failure_inside_collective_unblocks_everyone(self):
        def prog(comm):
            # Fault injection: a mid-collective death under test.
            if comm.rank == 1:  # spmdlint: ignore[SPMD004]
                raise ValueError("late")
            for _ in range(3):
                comm.allreduce(1)

        with pytest.raises(RankFailedError):
            run_spmd(4, prog, machine=FREE, timeout=5.0)

    def test_rank_aborted_is_catchable_in_program(self):
        # A program can observe the abort but must not swallow it into a
        # normal return (the executor still reports the primary cause).
        def prog(comm):
            # Fault injection: primary failure vs caught RankAborted.
            if comm.rank == 0:  # spmdlint: ignore[SPMD004]
                raise ValueError("primary")
            try:
                comm.barrier()
            except RankAborted:
                raise

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, machine=FREE, timeout=5.0)
        assert isinstance(ei.value.causes[0], ValueError)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            x = rng.random(10)
            total = comm.allreduce(x)
            return float(total.sum())

        r1 = run_spmd(4, prog, machine=FREE)
        r2 = run_spmd(4, prog, machine=FREE)
        assert r1.values == r2.values

    def test_model_time_deterministic(self):
        from repro.runtime import CORI_HASWELL

        def prog(comm):
            comm.send(np.arange(100), (comm.rank + 1) % comm.size)
            comm.recv((comm.rank - 1) % comm.size)
            comm.allreduce(1.0)
            return None

        e1 = run_spmd(4, prog, machine=CORI_HASWELL, timeout=10.0).elapsed
        e2 = run_spmd(4, prog, machine=CORI_HASWELL, timeout=10.0).elapsed
        assert e1 == e2
