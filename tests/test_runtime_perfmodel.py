"""Unit tests for the LogGP-style machine model."""

import math

import pytest

from repro.runtime.perfmodel import (
    CORI_HASWELL,
    CORI_HASWELL_SHARED,
    FREE,
    PRESETS,
    MachineModel,
    OpenMPModel,
    _log2_stages,
)


class TestOpenMPModel:
    def test_one_thread_is_unity(self):
        assert OpenMPModel().speedup(1) == pytest.approx(1.0, rel=0.01)

    def test_speedup_monotone_in_physical_range(self):
        m = OpenMPModel()
        prev = 0.0
        for t in (1, 2, 4, 8, 16, 32):
            s = m.speedup(t)
            assert s > prev
            prev = s

    def test_speedup_sublinear(self):
        m = OpenMPModel()
        assert m.speedup(32) < 32

    def test_hyperthreads_help_less_than_cores(self):
        m = OpenMPModel(physical_cores=32)
        gain_ht = m.speedup(64) - m.speedup(32)
        gain_cores = m.speedup(32) - m.speedup(16)
        assert 0 < gain_ht < gain_cores

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            OpenMPModel().speedup(0)

    def test_serial_fraction_caps_speedup(self):
        m = OpenMPModel(serial_fraction=0.5, contention=0.0)
        assert m.speedup(32) < 2.0


class TestMachineModel:
    def test_compute_cost_linear(self):
        m = CORI_HASWELL
        assert m.compute_cost(2e6) == pytest.approx(2 * m.compute_cost(1e6))

    def test_compute_cost_negative_rejected(self):
        with pytest.raises(ValueError):
            CORI_HASWELL.compute_cost(-1)

    def test_free_machine_charges_nothing(self):
        assert FREE.compute_cost(1e12) == 0.0
        assert FREE.p2p_cost(10**9) == 0.0
        assert FREE.allreduce_cost(10**6, 64) == 0.0

    def test_p2p_alpha_beta(self):
        m = MachineModel(alpha=1e-6, beta=1e-9)
        assert m.p2p_cost(0) == pytest.approx(1e-6)
        assert m.p2p_cost(1000) == pytest.approx(1e-6 + 1e-6)

    def test_collectives_grow_logarithmically(self):
        m = CORI_HASWELL
        c4 = m.allreduce_cost(64, 4)
        c16 = m.allreduce_cost(64, 16)
        c256 = m.allreduce_cost(64, 256)
        assert c16 / c4 == pytest.approx(2.0)
        assert c256 / c16 == pytest.approx(2.0)

    def test_single_rank_collectives_free(self):
        m = CORI_HASWELL
        assert m.allreduce_cost(1000, 1) == 0.0
        assert m.barrier_cost(1) == 0.0

    def test_alltoallv_latency_scales_with_p(self):
        m = CORI_HASWELL
        assert m.alltoallv_cost(0, 0, 64) > m.alltoallv_cost(0, 0, 8)

    def test_neighbor_collective_cheaper_for_sparse_neighborhoods(self):
        m = CORI_HASWELL
        dense = m.alltoallv_cost(1000, 1000, 1024)
        sparse = m.neighbor_alltoallv_cost(1000, 1000, 6)
        assert sparse < dense

    def test_with_threads_changes_compute_rate(self):
        m1 = CORI_HASWELL.with_threads(1)
        m4 = CORI_HASWELL.with_threads(4)
        assert m4.effective_compute_rate() > m1.effective_compute_rate()

    def test_shared_preset_faster_per_op_but_scales_worse(self):
        # Table III structure: shared memory wins at equal threads, the
        # distributed code has the better thread-scaling curve.
        dist4 = CORI_HASWELL.with_threads(4)
        shared4 = CORI_HASWELL_SHARED.with_threads(4)
        assert shared4.effective_compute_rate() > dist4.effective_compute_rate()
        dist_scaling = (
            CORI_HASWELL.with_threads(64).effective_compute_rate()
            / dist4.effective_compute_rate()
        )
        shared_scaling = (
            CORI_HASWELL_SHARED.with_threads(64).effective_compute_rate()
            / shared4.effective_compute_rate()
        )
        assert dist_scaling > shared_scaling

    def test_presets_registry(self):
        assert "cori-haswell" in PRESETS
        assert PRESETS["free"] is FREE


class TestLog2Stages:
    @pytest.mark.parametrize(
        "p,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10)]
    )
    def test_values(self, p, expected):
        assert _log2_stages(p) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _log2_stages(0)

    def test_matches_ceil_log2(self):
        for p in range(2, 200):
            assert _log2_stages(p) == math.ceil(math.log2(p))
