"""Unit tests for ASCII plotting."""

import pytest

from repro.bench.ascii_plot import MARKERS, ascii_plot, sparkline


class TestAsciiPlot:
    def test_renders_all_series_markers(self):
        out = ascii_plot(
            {
                "a": [(1, 1), (2, 2), (3, 3)],
                "b": [(1, 3), (2, 2.5), (3, 1)],
            },
            title="test",
        )
        assert "test" in out
        assert MARKERS[0] in out
        assert MARKERS[1] in out
        assert "o=a" in out and "x=b" in out

    def test_axis_labels(self):
        out = ascii_plot(
            {"s": [(1, 10), (100, 1)]},
            xlabel="procs", ylabel="seconds",
        )
        assert "x: procs" in out
        assert "y: seconds" in out

    def test_log_scales(self):
        out = ascii_plot(
            {"s": [(16, 100.0), (4096, 1.0)]}, logx=True, logy=True
        )
        # End labels are de-logged.
        assert "16" in out
        assert "4.1e+03" in out or "4096" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 1)]}, logx=True)
        with pytest.raises(ValueError):
            ascii_plot({"s": [(1, -1)]}, logy=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"s": []})

    def test_flat_series_ok(self):
        out = ascii_plot({"s": [(1, 5), (2, 5)]})
        assert "o" in out

    def test_dimensions_respected(self):
        out = ascii_plot({"s": [(0, 0), (1, 1)]}, width=20, height=5)
        plot_rows = [ln for ln in out.splitlines() if "|" in ln]
        assert len(plot_rows) == 5


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert s[0] == " "
        assert s[-1] == "█"

    def test_constant(self):
        s = sparkline([3, 3, 3])
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_resampling_caps_width(self):
        s = sparkline(list(range(1000)), width=40)
        assert len(s) <= 40
