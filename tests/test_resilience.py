"""Tests for the resilience subsystem: checkpoint/restore + fault injection.

The headline guarantee: kill a run mid-phase, resume it from its last
valid checkpoint, and the final labels and modularity are bit-identical
to an uninterrupted run.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.core import LouvainConfig, Variant, run_louvain
from repro.resilience import (
    CorruptShardError,
    FaultPlan,
    NoCheckpointError,
    corrupt_checkpoint_shard,
    latest_valid_manifest,
    load_shard,
    read_manifest,
    scan_checkpoints,
    verify_manifest,
)
from repro.runtime import (
    CommTimeoutError,
    InjectedFault,
    RankFailedError,
    run_spmd,
)


@pytest.fixture(autouse=True)
def _verify_schedule(monkeypatch):
    """Run this suite under the dynamic collective-schedule verifier so
    a checkpoint/resume divergence fails at its first mismatched op
    instead of on end-state mismatch."""
    monkeypatch.setenv("REPRO_VERIFY_SCHEDULE", "1")
from tests.conftest import planted_blocks_graph


def _graph():
    return planted_blocks_graph(
        blocks=4, per_block=12, p_in=0.7, inter_edges=10, seed=3
    )


def _config():
    return LouvainConfig(variant=Variant.ET_TC, alpha=0.25, seed=1)


def _crash(g, p, cfg, ckpt_dir, plan, **kwargs):
    """Run a checkpointed job that is expected to die from the plan."""
    with pytest.raises((RankFailedError, InjectedFault)) as exc:
        run_louvain(
            g, p, cfg, checkpoint_dir=ckpt_dir, fault_plan=plan, **kwargs
        )
    return exc.value


def _injected_fault(exc):
    """Unwrap the InjectedFault whether or not the executor wrapped it."""
    if isinstance(exc, InjectedFault):
        return exc
    for cause in exc.causes.values():
        if isinstance(cause, InjectedFault):
            return cause
    raise AssertionError(f"no InjectedFault among causes: {exc.causes}")


class TestCheckpointResume:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_resume_is_bit_identical(self, tmp_path, p):
        """Crash mid-run, resume, and match the uninterrupted run."""
        g, cfg = _graph(), _config()
        ref = run_louvain(g, p, cfg)
        d = str(tmp_path / "ck")
        plan = FaultPlan(kills={p - 1: 25})
        _crash(g, p, cfg, d, plan, checkpoint_every_iterations=1)
        res = run_louvain(g, p, cfg, checkpoint_dir=d, resume=True)
        np.testing.assert_array_equal(ref.assignment, res.assignment)
        assert res.modularity == ref.modularity

    def test_resume_from_phase_boundary_only(self, tmp_path):
        """Phase-boundary cadence alone (no mid-phase checkpoints)."""
        g, cfg = _graph(), _config()
        ref = run_louvain(g, 2, cfg)
        d = str(tmp_path / "ck")
        _crash(g, 2, cfg, d, FaultPlan(kills={1: 40}))
        res = run_louvain(g, 2, cfg, checkpoint_dir=d, resume=True)
        np.testing.assert_array_equal(ref.assignment, res.assignment)
        assert res.modularity == ref.modularity

    def test_resume_without_checkpoint_raises(self, tmp_path):
        g, cfg = _graph(), _config()
        with pytest.raises((RankFailedError, NoCheckpointError)):
            run_louvain(
                g, 1, cfg, checkpoint_dir=str(tmp_path / "empty"), resume=True
            )

    def test_checkpointing_does_not_perturb_result(self, tmp_path):
        """Checkpoint writes must never change the algorithm's output."""
        g, cfg = _graph(), _config()
        ref = run_louvain(g, 2, cfg)
        res = run_louvain(
            g, 2, cfg,
            checkpoint_dir=str(tmp_path / "ck"),
            checkpoint_every_iterations=2,
        )
        np.testing.assert_array_equal(ref.assignment, res.assignment)
        assert res.modularity == ref.modularity

    def test_trace_includes_checkpoint_category(self, tmp_path):
        g, cfg = _graph(), _config()
        res = run_louvain(g, 2, cfg, checkpoint_dir=str(tmp_path / "ck"))
        assert res.trace is not None
        seconds = res.trace.seconds_by_category()
        assert seconds.get("checkpoint", 0.0) > 0.0


class TestCorruption:
    def _checkpointed_run(self, tmp_path):
        g, cfg = _graph(), _config()
        d = str(tmp_path / "ck")
        ref = run_louvain(
            g, 2, cfg, checkpoint_dir=d, checkpoint_every_iterations=2
        )
        return g, cfg, d, ref

    def test_corrupt_shard_detected(self, tmp_path):
        g, cfg, d, ref = self._checkpointed_run(tmp_path)
        manifest = latest_valid_manifest(d, expect_size=2)
        assert manifest is not None
        shard = manifest.shard_path(1)
        corrupt_checkpoint_shard(shard, seed=0)
        assert verify_manifest(manifest)  # non-empty problem list
        with pytest.raises(CorruptShardError):
            load_shard(manifest, 1)

    def test_resume_falls_back_to_older_checkpoint(self, tmp_path):
        g, cfg, d, ref = self._checkpointed_run(tmp_path)
        steps = sorted(
            name for name in os.listdir(d) if name.startswith("step-")
        )
        assert len(steps) >= 2  # keep=2 retains the two newest
        newest = read_manifest(os.path.join(d, steps[-1]))
        corrupt_checkpoint_shard(newest.shard_path(0), seed=1)
        survivor = latest_valid_manifest(d, expect_size=2)
        assert survivor is not None
        assert survivor.seq < newest.seq
        res = run_louvain(g, 2, cfg, checkpoint_dir=d, resume=True)
        np.testing.assert_array_equal(ref.assignment, res.assignment)
        assert res.modularity == ref.modularity

    def test_all_corrupt_raises_no_checkpoint(self, tmp_path):
        g, cfg, d, ref = self._checkpointed_run(tmp_path)
        for name, manifest, err in scan_checkpoints(d):
            assert manifest is not None and err is None
            for rank in range(manifest.size):
                corrupt_checkpoint_shard(manifest.shard_path(rank), seed=rank)
        with pytest.raises(RankFailedError) as exc:
            run_louvain(g, 2, cfg, checkpoint_dir=d, resume=True)
        assert any(
            isinstance(c, NoCheckpointError) for c in exc.value.causes.values()
        )


class TestFaultInjection:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded(7, size=4)
        b = FaultPlan.seeded(7, size=4)
        assert a.kill_point() == b.kill_point()
        assert FaultPlan.seeded(8, size=4).kill_point() != a.kill_point() or (
            # different seeds may collide; at minimum the API is stable
            a.kill_point() is not None
        )

    @pytest.mark.parametrize("p", [1, 2])
    def test_same_seed_same_kill_point(self, tmp_path, p):
        """Two runs under the same plan die at the same operation."""
        g, cfg = _graph(), _config()
        plan = FaultPlan.seeded(11, size=p, min_step=10, max_step=30)
        faults = []
        for attempt in range(2):
            d = str(tmp_path / f"ck{attempt}")
            exc = _crash(g, p, cfg, d, plan, checkpoint_every_iterations=1)
            faults.append(_injected_fault(exc))
        assert faults[0].rank == faults[1].rank
        assert faults[0].op_index == faults[1].op_index
        assert faults[0].op_name == faults[1].op_name

    def test_single_rank_kill_propagates_natively(self, tmp_path):
        """The size==1 fast path raises InjectedFault unwrapped."""
        g, cfg = _graph(), _config()
        with pytest.raises(InjectedFault):
            run_louvain(
                g, 1, cfg,
                checkpoint_dir=str(tmp_path / "ck"),
                fault_plan=FaultPlan(kills={0: 5}),
            )

    def test_dropped_send_times_out(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, 1)
                return None
            return comm.recv(0)

        plan = FaultPlan(drops={(0, 1)})
        with pytest.raises(RankFailedError) as exc:
            run_spmd(2, program, fault_plan=plan, timeout=0.5)
        assert any(
            isinstance(c, CommTimeoutError) for c in exc.value.causes.values()
        )

    def test_delay_increases_elapsed(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, 1)
                return None
            return comm.recv(0)

        plain = run_spmd(2, program)
        delayed = run_spmd(
            2, program, fault_plan=FaultPlan(delays={(0, 1): 2.5})
        )
        assert delayed.elapsed >= plain.elapsed + 2.5

    def test_invalid_seeded_args(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, size=0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, size=2, min_step=5, max_step=4)


class TestConfigKeyGuard:
    def test_cross_config_resume_refused(self, tmp_path):
        """A checkpoint written under one config must not seed a resume
        under semantically different settings."""
        g, cfg = _graph(), _config()
        d = str(tmp_path / "ck")
        _crash(g, 2, cfg, d, FaultPlan(kills={1: 40}))
        other = LouvainConfig(variant=Variant.BASELINE, seed=99)
        with pytest.raises((ValueError, RankFailedError), match="config"):
            run_louvain(g, 2, other, checkpoint_dir=d, resume=True)

    def test_transport_knob_change_still_resumes(self, tmp_path):
        """Transport ablations are outside the config key: resuming a
        pull-transport checkpoint with push transport is legal."""
        g, cfg = _graph(), _config()
        ref = run_louvain(g, 2, cfg)
        d = str(tmp_path / "ck")
        _crash(g, 2, cfg, d, FaultPlan(kills={1: 40}))
        push_cfg = replace(cfg, community_push_updates=True)
        res = run_louvain(g, 2, push_cfg, checkpoint_dir=d, resume=True)
        np.testing.assert_array_equal(ref.assignment, res.assignment)

    def test_manifest_records_config_key(self, tmp_path):
        g, cfg = _graph(), _config()
        d = str(tmp_path / "ck")
        run_louvain(g, 2, cfg, checkpoint_dir=d)
        manifest = latest_valid_manifest(d, expect_size=2)
        assert manifest.config_key == cfg.cache_key()
