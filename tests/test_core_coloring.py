"""Unit tests for distributed distance-1 coloring (§VI future work)."""

import numpy as np
import pytest

from repro.core import LouvainConfig, run_louvain
from repro.core.coloring import distributed_coloring, verify_coloring
from repro.graph import DistGraph, EdgeList
from repro.runtime import FREE, run_spmd

from .conftest import planted_blocks_graph


def color_spmd(g, nranks, seed=0):
    def prog(comm):
        dg = DistGraph.distribute(comm, g)
        plan = dg.build_ghost_plan(comm)
        colors = distributed_coloring(comm, dg, plan, seed=seed)
        ok = verify_coloring(comm, dg, colors, plan)
        return ok, colors.tolist(), dg.vbegin

    r = run_spmd(nranks, prog, machine=FREE, timeout=30.0)
    assert all(v[0] for v in r.values)
    full = np.empty(g.num_vertices, dtype=np.int64)
    for ok, colors, vb in r.values:
        full[vb:vb + len(colors)] = colors
    return full


class TestDistributedColoring:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 7])
    def test_valid_on_planted_blocks(self, nranks):
        g = planted_blocks_graph(blocks=4, per_block=12, seed=2)
        colors = color_spmd(g, nranks)
        # Proper distance-1 coloring globally.
        eu, ev, _ = g.edge_array()
        non_loop = eu != ev
        assert np.all(colors[eu[non_loop]] != colors[ev[non_loop]])

    def test_ring(self):
        n = 9  # odd ring needs 3 colors
        g = EdgeList.from_arrays(
            n, np.arange(n), (np.arange(n) + 1) % n
        ).to_csr()
        colors = color_spmd(g, 3)
        assert colors.max() == 2

    def test_color_count_reasonable(self):
        g = planted_blocks_graph(blocks=3, per_block=10, p_in=1.0,
                                 inter_edges=5, seed=1)
        colors = color_spmd(g, 2)
        # Cliques of 10 need >= 10 colors; greedy-JP stays near degree+1.
        assert 9 <= colors.max() <= g.edge_counts().max()

    def test_deterministic_across_rank_counts(self):
        # Priorities depend only on global ids, so the coloring is
        # invariant to the partition.
        g = planted_blocks_graph(blocks=3, per_block=8, seed=5)
        c1 = color_spmd(g, 1, seed=3)
        c4 = color_spmd(g, 4, seed=3)
        np.testing.assert_array_equal(c1, c4)

    def test_self_loops_ignored(self):
        g = EdgeList.from_arrays(3, [0, 0, 1], [0, 1, 2]).to_csr()
        colors = color_spmd(g, 2)
        assert colors[0] != colors[1]
        assert colors[1] != colors[2]

    def test_empty_rank_ok(self):
        g = EdgeList.from_arrays(3, [0, 1], [1, 2]).to_csr()
        colors = color_spmd(g, 5)  # more ranks than vertices
        assert colors[0] != colors[1]


class TestColoringInLouvain:
    def test_same_quality_fewer_iterations(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        col = run_louvain(
            planted_blocks, 4, LouvainConfig(use_coloring=True),
            machine=FREE,
        )
        assert col.modularity >= base.modularity - 0.02
        # §VI: "this may lead to faster convergence".
        assert col.total_iterations <= base.total_iterations

    def test_valid_partition(self, two_cliques):
        r = run_louvain(
            two_cliques, 2, LouvainConfig(use_coloring=True), machine=FREE
        )
        assert r.num_communities == 2
        assert r.modularity == pytest.approx(0.45238095, abs=1e-6)

    def test_combines_with_et(self, planted_blocks):
        from repro.core import Variant

        cfg = LouvainConfig(
            use_coloring=True, variant=Variant.ET, alpha=0.5
        )
        r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
        assert r.modularity > 0.75
