"""The deprecated legacy entry points: warn, but keep working.

The three pre-service front doors exported from ``repro`` are now thin
wrappers over the request API.  Each must emit a DeprecationWarning and
return results equivalent to the core implementation it replaced.
"""

import numpy as np
import pytest

import repro
from repro.core import LouvainConfig
from repro.core import distlouvain as core_distlouvain
from repro.core.dynamic import incremental_louvain as core_incremental
from repro.generators import make_graph
from repro.graph import DistGraph
from repro.runtime import run_spmd


@pytest.fixture(scope="module")
def tiny():
    return make_graph("soc-friendster", scale="tiny")


class TestRunLouvain:
    def test_warns_and_matches_core(self, tiny):
        cfg = LouvainConfig(seed=5)
        with pytest.warns(DeprecationWarning, match="run_louvain is deprecated"):
            wrapped = repro.run_louvain(tiny, 2, cfg)
        reference = core_distlouvain.run_louvain(tiny, 2, cfg)
        assert np.array_equal(wrapped.assignment, reference.assignment)
        assert wrapped.modularity == reference.modularity

    def test_warm_start_passes_through(self, tiny):
        cfg = LouvainConfig(seed=5)
        seed = np.zeros(tiny.num_vertices, dtype=np.int64)
        with pytest.warns(DeprecationWarning):
            wrapped = repro.run_louvain(
                tiny, 2, cfg, initial_assignment=seed
            )
        reference = core_distlouvain.run_louvain(
            tiny, 2, cfg, initial_assignment=seed
        )
        assert np.array_equal(wrapped.assignment, reference.assignment)

    def test_resume_round_trip(self, tiny, tmp_path):
        cfg = LouvainConfig(seed=5)
        ckpt = str(tmp_path / "ckpt")
        baseline = core_distlouvain.run_louvain(
            tiny, 2, cfg, checkpoint_dir=ckpt, checkpoint_every_iterations=2
        )
        with pytest.warns(DeprecationWarning):
            resumed = repro.run_louvain(
                None, 2, cfg, checkpoint_dir=ckpt, resume=True
            )
        assert np.array_equal(resumed.assignment, baseline.assignment)
        assert resumed.modularity == baseline.modularity


class TestDistributedLouvain:
    def test_warns_inside_spmd(self, tiny):
        # size==1 runs the rank inline, so the wrapper's warning
        # propagates to the caller thread.
        cfg = LouvainConfig(seed=5)

        def main(comm):
            dg = DistGraph.distribute(comm, tiny)
            return repro.distributed_louvain(comm, dg, cfg)

        with pytest.warns(
            DeprecationWarning, match="distributed_louvain is deprecated"
        ):
            spmd = run_spmd(1, main)
        reference = core_distlouvain.run_louvain(tiny, 1, cfg)
        assert np.array_equal(spmd.value.assignment, reference.assignment)
        assert spmd.value.modularity == reference.modularity


class TestIncrementalLouvain:
    def test_warns_and_matches_core(self, tiny):
        cfg = LouvainConfig(seed=5)
        previous = core_distlouvain.run_louvain(tiny, 2, cfg).assignment
        with pytest.warns(
            DeprecationWarning, match="incremental_louvain is deprecated"
        ):
            wrapped = repro.incremental_louvain(tiny, previous, 2, cfg)
        reference = core_incremental(tiny, previous, 2, cfg)
        assert np.array_equal(wrapped.assignment, reference.assignment)
        assert wrapped.modularity == reference.modularity


class TestFacadeExports:
    def test_service_names_exported(self):
        for name in (
            "DetectionRequest",
            "DetectionResponse",
            "Engine",
            "JobState",
            "ResultStore",
            "AdmissionError",
            "detect",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_core_imports_stay_warning_free(self, tiny, recwarn):
        # Internal callers use repro.core directly and must not be
        # punished for it.
        core_distlouvain.run_louvain(tiny, 2, LouvainConfig())
        deprecations = [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations == []
