"""Exporter tests: Prometheus text exposition, fleet merge, HTTP endpoint."""

import json
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    PeriodicExporter,
    merge_snapshots,
    to_prometheus,
    trace_to_registry,
    write_json,
    write_prometheus,
)
from repro.runtime import FREE, run_spmd


def _sample_registry():
    reg = MetricsRegistry()
    c = reg.counter(
        "repro_jobs_total", "Jobs by outcome.", labelnames=("outcome",)
    )
    c.labels(outcome="done").inc(3)
    c.labels(outcome="failed").inc()
    reg.gauge("repro_queue_depth", "Pending jobs.").set(2)
    h = reg.histogram("repro_run_seconds", "Run latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


GOLDEN = """\
# HELP repro_jobs_total Jobs by outcome.
# TYPE repro_jobs_total counter
repro_jobs_total{outcome="done"} 3
repro_jobs_total{outcome="failed"} 1
# HELP repro_queue_depth Pending jobs.
# TYPE repro_queue_depth gauge
repro_queue_depth 2
# HELP repro_run_seconds Run latency.
# TYPE repro_run_seconds histogram
repro_run_seconds_bucket{le="0.1"} 1
repro_run_seconds_bucket{le="1.0"} 2
repro_run_seconds_bucket{le="+inf"} 3
repro_run_seconds_sum 5.55
repro_run_seconds_count 3
"""


class TestPrometheusFormat:
    def test_golden_exposition(self):
        # Byte-for-byte 0.0.4 text format: HELP/TYPE headers, label
        # rendering, cumulative le buckets, _sum/_count.
        assert to_prometheus(_sample_registry()) == GOLDEN

    def test_snapshot_dict_renders_identically(self):
        reg = _sample_registry()
        assert to_prometheus(reg.snapshot()) == to_prometheus(reg)

    def test_extra_labels_on_every_sample(self):
        text = to_prometheus(_sample_registry(), extra_labels={"shard": "0"})
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert 'shard="0"' in line

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", "x", labelnames=("tag",))
        fam.labels(tag='a"b\\c\nd').inc()
        text = to_prometheus(reg)
        assert 'tag="a\\"b\\\\c\\nd"' in text

    def test_help_newline_escaped(self):
        reg = MetricsRegistry()
        reg.counter("y_total", "line one\nline two").inc()
        line = to_prometheus(reg).splitlines()[0]
        assert line == "# HELP y_total line one\\nline two"


class TestFileExporters:
    def test_write_prometheus_atomic(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(path, _sample_registry())
        assert path.read_text() == GOLDEN
        assert not list(tmp_path.glob("*.tmp*"))

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "metrics.json"
        reg = _sample_registry()
        write_json(path, reg)
        assert json.loads(path.read_text()) == reg.snapshot()

    def test_periodic_exporter_final_write(self, tmp_path):
        path = tmp_path / "metrics.prom"
        reg = _sample_registry()
        with PeriodicExporter(reg, prometheus_path=path, interval=60.0):
            pass  # close() must flush even if no tick elapsed
        assert path.read_text() == GOLDEN

    def test_periodic_exporter_needs_an_output(self):
        with pytest.raises(ValueError):
            PeriodicExporter(_sample_registry())


class TestMergeSnapshots:
    def test_shard_label_added_and_families_merged(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total", "n").inc(1)
        b.counter("n_total", "n").inc(2)
        merged = merge_snapshots(
            {"0": a.snapshot(), "1": b.snapshot()}, labelname="shard"
        )
        (family,) = merged["metrics"]
        assert family["labelnames"] == ["shard"]
        values = {
            s["labels"]["shard"]: s["value"] for s in family["samples"]
        }
        assert values == {"0": 1.0, "1": 2.0}

    def test_merged_snapshot_is_valid_exporter_input(self):
        a = MetricsRegistry()
        a.counter("n_total", "n").inc()
        merged = merge_snapshots({"s0": a.snapshot()})
        assert 'n_total{shard="s0"} 1' in to_prometheus(merged)


class TestTraceToRegistry:
    def test_spmd_trace_becomes_labeled_counters(self):
        def prog(comm):
            return comm.allreduce(comm.rank)

        r = run_spmd(3, prog, machine=FREE)
        text = to_prometheus(trace_to_registry(r.trace))
        assert 'repro_spmd_collectives_total{op="allreduce"} 3' in text
        assert "repro_spmd_ranks 3" in text
        assert 'repro_spmd_seconds_total{category=' in text


class TestMetricsServer:
    def test_serves_text_and_json(self):
        reg = _sample_registry()
        with MetricsServer(reg, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert resp.headers["Content-Type"].startswith("text/plain")
                assert resp.read().decode() == GOLDEN
            with urllib.request.urlopen(f"{base}/metrics.json") as resp:
                assert json.load(resp) == reg.snapshot()

    def test_unknown_path_404(self):
        with MetricsServer(_sample_registry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope"
                )
            assert err.value.code == 404
