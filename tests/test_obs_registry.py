"""Unit tests for the labeled metrics registry (repro.obs.registry)."""

import pickle

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x_total", "x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("events_total", "events", labelnames=("kind",))
        fam.labels(kind="a").inc()
        fam.labels(kind="b").inc(3)
        fam.labels(kind="a").inc()
        by_kind = {ls["kind"]: ch.value for ls, ch in fam.samples()}
        assert by_kind == {"a": 2.0, "b": 3.0}

    def test_wrong_labelset_rejected(self):
        fam = MetricsRegistry().counter("t_total", "t", labelnames=("a",))
        with pytest.raises(ValueError):
            fam.labels(b=1)
        with pytest.raises(ValueError):
            fam.labels()


class TestGauge:
    def test_set_and_adjust(self):
        g = MetricsRegistry().gauge("depth", "queue depth")
        g.set(5)
        g.adjust(-2)
        assert g.value == 3.0


class TestHistogram:
    def test_snapshot_keys_match_legacy_latency_histogram(self):
        # The serving tier pickles these snapshots across the shard RPC;
        # the key set is load-bearing.
        h = Histogram()
        h.observe(0.02)
        h.observe(0.3)
        snap = h.snapshot()
        assert set(snap) == {
            "count", "sum", "mean", "max", "p50", "p99", "buckets"
        }
        assert snap["count"] == 2
        assert "+inf" in snap["buckets"]

    def test_quantiles_monotone(self):
        h = Histogram()
        for v in [0.001, 0.01, 0.1, 1.0, 10.0]:
            h.observe(v)
        assert h.quantile(0.5) <= h.quantile(0.99)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-0.1)

    def test_custom_buckets(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.5)
        h.observe(5.0)
        # Legacy per-bin counts: the "+inf" bin holds the overflow only.
        assert h.snapshot()["buckets"] == {"1.0": 0, "2.0": 1, "+inf": 1}


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("n_total", "n")
        b = reg.counter("n_total", "n")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "n")
        with pytest.raises(ValueError):
            reg.gauge("n_total", "n")

    def test_labelnames_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "n", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("n_total", "n", labelnames=("b",))

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name", "x")

    def test_bad_label_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x_total", "x", labelnames=("0bad",))

    def test_snapshot_is_picklable_and_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("zz", "z").set(1)
        reg.counter("aa_total", "a").inc()
        reg.histogram("lat_seconds", "l", buckets=(0.1,)).observe(0.05)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        names = [m["name"] for m in snap["metrics"]]
        assert names == sorted(names)

    def test_default_buckets_cover_subsecond_to_minutes(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 300.0


class TestServiceMetricsBackCompat:
    """ServiceMetrics moved onto the registry; its JSON must not change."""

    def _metrics(self):
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics()
        m.inc("submitted")
        m.inc("completed")
        m.inc("cache_hits", 2)
        m.set_gauge("queue_depth", 3)
        m.observe_queue_latency(0.01)
        m.observe_run_latency(0.5)
        return m

    def test_snapshot_top_level_keys(self):
        snap = self._metrics().snapshot()
        assert set(snap) == {
            "counters", "gauges", "cache_hit_rate", "latency", "modelled"
        }
        assert set(snap["latency"]) == {"queue_seconds", "run_seconds"}
        assert set(snap["modelled"]) == {
            "total_seconds", "seconds_by_category", "collective_counts"
        }

    def test_counters_are_plain_ints(self):
        snap = self._metrics().snapshot()
        assert snap["counters"]["cache_hits"] == 2
        assert all(
            isinstance(v, int) for v in snap["counters"].values()
        )

    def test_gauges_preserved(self):
        snap = self._metrics().snapshot()
        assert snap["gauges"]["queue_depth"] == 3
        assert snap["gauges"]["running"] == 0

    def test_latency_histogram_format_unchanged(self):
        snap = self._metrics().snapshot()
        qs = snap["latency"]["queue_seconds"]
        assert set(qs) == {
            "count", "sum", "mean", "max", "p50", "p99", "buckets"
        }

    def test_format_renders(self):
        text = self._metrics().format()
        assert "service metrics:" in text
        assert "cache_hit_rate" in text

    def test_registry_exposes_service_families(self):
        m = self._metrics()
        names = {f.name for f in m.registry.families()}
        assert "repro_service_events_total" in names
        assert "repro_service_latency_seconds" in names
