"""Unit tests for nonblocking p2p and the hierarchical latency model."""

import pytest

from repro.runtime import FREE, CORI_HASWELL, run_spmd, wait_all
from repro.runtime.perfmodel import MachineModel


def spmd(size, fn, **kw):
    kw.setdefault("machine", FREE)
    kw.setdefault("timeout", 10.0)
    return run_spmd(size, fn, **kw)


class TestNonblocking:
    def test_isend_irecv_roundtrip(self):
        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            req_s = comm.isend(comm.rank * 2, nxt)
            req_r = comm.irecv(prv)
            assert req_s.completed
            return req_r.wait()

        r = spmd(4, prog)
        assert r.values == [6, 0, 2, 4]

    def test_irecv_test_polls(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1)
                done_before, _ = req.test()
                # Wait for the message to actually arrive.
                while True:
                    done, value = req.test()
                    if done:
                        return done_before, value
            comm.send("payload", 0)
            return None

        r = spmd(2, prog)
        _, value = r.values[0]
        assert value == "payload"

    def test_wait_twice_returns_cached(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(42, 1)
                return None
            req = comm.irecv(0)
            return req.wait(), req.wait()

        assert spmd(2, prog).values[1] == (42, 42)

    def test_wait_all_ordering(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(1, tag=t) for t in range(3)]
                return wait_all(reqs)
            for t in (2, 0, 1):  # send out of order; tags demultiplex
                comm.send(f"tag{t}", 0, tag=t)
            return None

        r = spmd(2, prog)
        assert r.values[0] == ["tag0", "tag1", "tag2"]

    def test_test_on_send_request(self):
        def prog(comm):
            req = comm.isend(1, comm.rank)
            comm.recv(comm.rank)
            return req.test()

        assert spmd(2, prog).values == [(True, None)] * 2


class TestHierarchicalLatency:
    def test_node_of(self):
        m = MachineModel(ranks_per_node=4)
        assert m.node_of(0) == 0
        assert m.node_of(3) == 0
        assert m.node_of(4) == 1

    def test_intra_node_cheaper(self):
        m = MachineModel(ranks_per_node=4, intra_node_alpha_fraction=0.25)
        assert m.p2p_alpha(0, 1) == pytest.approx(m.alpha * 0.25)
        assert m.p2p_alpha(0, 5) == pytest.approx(m.alpha)

    def test_single_node_run_cheaper_than_spread(self):
        # Same communication pattern; co-located ranks pay less latency.
        def prog(comm):
            for _ in range(20):
                comm.send(1, (comm.rank + 1) % comm.size)
                comm.recv((comm.rank - 1) % comm.size)
            return None

        packed = MachineModel(ranks_per_node=8)
        spread = MachineModel(ranks_per_node=1)
        t_packed = run_spmd(4, prog, machine=packed, timeout=10.0).elapsed
        t_spread = run_spmd(4, prog, machine=spread, timeout=10.0).elapsed
        assert t_packed < t_spread

    def test_scaled_model_keeps_hierarchy(self):
        m = CORI_HASWELL.scaled(100.0)
        assert m.p2p_alpha(0, 1) < m.p2p_alpha(0, 100)
