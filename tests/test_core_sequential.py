"""Unit tests for the serial Louvain reference implementation."""

import numpy as np
import pytest

from repro.core import LouvainConfig, Variant, louvain, modularity
from repro.graph import CSRGraph, EdgeList

from .conftest import assert_valid_partition


class TestLouvainQuality:
    def test_two_cliques(self, two_cliques):
        r = louvain(two_cliques)
        assert r.modularity == pytest.approx(0.45238095, abs=1e-6)
        assert r.num_communities == 2
        assert_valid_partition(r.assignment, 10)

    def test_karate_club(self, karate):
        r = louvain(karate)
        # The classic Louvain result: Q ≈ 0.41-0.42, ~4 communities.
        assert 0.40 <= r.modularity <= 0.43
        assert 3 <= r.num_communities <= 5
        assert_valid_partition(r.assignment, 34)

    def test_planted_blocks_recovered(self, planted_blocks):
        r = louvain(planted_blocks)
        assert r.num_communities == 8
        assert r.modularity > 0.8
        # Each planted block is one community.
        for b in range(8):
            block = r.assignment[b * 25:(b + 1) * 25]
            assert len(np.unique(block)) == 1

    def test_reported_q_matches_assignment(self, planted_blocks):
        r = louvain(planted_blocks)
        assert modularity(planted_blocks, r.assignment) == pytest.approx(
            r.modularity, abs=1e-9
        )

    def test_path_graph_segments(self, path_graph):
        r = louvain(path_graph)
        assert r.modularity > 0.45
        assert_valid_partition(r.assignment, 12)

    def test_star_collapses(self, star_graph):
        r = louvain(star_graph)
        assert r.num_communities == 1
        assert r.modularity == pytest.approx(0.0)

    def test_empty_graph(self):
        r = louvain(CSRGraph.empty(4))
        assert r.num_communities == 4  # isolated vertices stay singleton
        assert r.modularity == 0.0

    def test_weighted_graph_respects_weights(self):
        # Path 0-1-2-3 where the middle edge is heavy: the heavy edge
        # must end up intra-community.
        g = EdgeList.from_arrays(
            4, [0, 1, 2], [1, 2, 3], [1.0, 10.0, 1.0]
        ).to_csr()
        r = louvain(g)
        assert r.assignment[1] == r.assignment[2]


class TestLouvainMechanics:
    def test_modularity_monotone_in_baseline(self, planted_blocks):
        r = louvain(planted_blocks)
        qs = [it.modularity for it in r.iterations]
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))

    def test_phase_stats_recorded(self, planted_blocks):
        r = louvain(planted_blocks)
        assert r.num_phases >= 2
        assert r.phases[0].num_vertices == 200
        assert r.phases[1].num_vertices < 200
        assert r.total_iterations == len(r.iterations)

    def test_max_phases_respected(self, planted_blocks):
        r = louvain(planted_blocks, LouvainConfig(max_phases=1))
        assert r.num_phases == 1

    def test_max_iterations_respected(self, planted_blocks):
        r = louvain(planted_blocks, LouvainConfig(max_iterations=1))
        assert all(p.num_iterations == 1 for p in r.phases)

    def test_loose_tau_stops_earlier(self, planted_blocks):
        tight = louvain(planted_blocks, LouvainConfig(tau=1e-8))
        loose = louvain(planted_blocks, LouvainConfig(tau=0.05))
        assert loose.total_iterations <= tight.total_iterations

    def test_deterministic(self, planted_blocks):
        r1 = louvain(planted_blocks)
        r2 = louvain(planted_blocks)
        np.testing.assert_array_equal(r1.assignment, r2.assignment)
        assert r1.modularity == r2.modularity

    def test_track_assignments(self, two_cliques):
        r = louvain(two_cliques, LouvainConfig(track_assignments=True))
        assert r.phase_assignments is not None
        assert len(r.phase_assignments) == r.num_phases
        for pa in r.phase_assignments:
            assert len(pa) == 10


class TestLouvainVariants:
    @pytest.mark.parametrize("alpha", [0.25, 0.75, 1.0])
    def test_et_quality_close_to_baseline(self, planted_blocks, alpha):
        base = louvain(planted_blocks)
        et = louvain(
            planted_blocks, LouvainConfig(variant=Variant.ET, alpha=alpha)
        )
        assert et.modularity >= base.modularity - 0.05

    def test_etc_exits_on_inactive(self, planted_blocks):
        cfg = LouvainConfig(variant=Variant.ETC, alpha=0.9)
        r = louvain(planted_blocks, cfg)
        assert r.modularity > 0.7

    def test_threshold_cycling_runs_final_pass(self, planted_blocks):
        r = louvain(
            planted_blocks, LouvainConfig(variant=Variant.THRESHOLD_CYCLING)
        )
        base = louvain(planted_blocks)
        assert r.modularity >= base.modularity - 0.03
        # Last recorded phase must have used the lowest threshold.
        assert r.phases[-1].tau == pytest.approx(1e-6)

    def test_et_alpha0_matches_baseline_quality(self, planted_blocks):
        base = louvain(planted_blocks)
        et0 = louvain(planted_blocks, LouvainConfig(variant=Variant.ET, alpha=0.0))
        assert et0.modularity == pytest.approx(base.modularity, abs=1e-9)
