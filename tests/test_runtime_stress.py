"""Stress and adversarial-schedule tests for the SPMD runtime.

The communicator underpins everything; these tests hammer it with
irregular communication patterns, interleavings and failure timings the
algorithm code never produces, to pin the semantics down.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import FREE, RankFailedError, run_spmd


def spmd(size, fn, **kw):
    kw.setdefault("machine", FREE)
    kw.setdefault("timeout", 30.0)
    return run_spmd(size, fn, **kw)


class TestMessageStorm:
    def test_many_small_messages(self):
        N = 200

        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            for i in range(N):
                comm.send(i, nxt)
            got = [comm.recv(prv) for _ in range(N)]
            return got == list(range(N))

        assert all(spmd(4, prog).values)

    def test_all_to_all_via_p2p(self):
        def prog(comm):
            for d in range(comm.size):
                if d != comm.rank:
                    comm.send((comm.rank, d), d)
            got = {}
            for s in range(comm.size):
                if s != comm.rank:
                    got[s] = comm.recv(s)
            return all(v == (s, comm.rank) for s, v in sorted(got.items()))

        assert all(spmd(6, prog).values)

    def test_interleaved_p2p_and_collectives(self):
        def prog(comm):
            total = 0
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            for round_ in range(20):
                comm.send(round_ * comm.rank, nxt)
                total += comm.allreduce(1)
                got = comm.recv(prv)
                assert got == round_ * prv
                comm.barrier()
            return total

        r = spmd(4, prog)
        assert r.values == [80] * 4

    def test_large_payloads(self):
        def prog(comm):
            payload = np.arange(50_000, dtype=np.int64) + comm.rank
            other = (comm.rank + 1) % comm.size
            comm.send(payload, other)
            got = comm.recv((comm.rank - 1) % comm.size)
            return int(got[0])

        r = spmd(3, prog)
        assert r.values == [2, 0, 1]

    def test_deep_collective_sequences(self):
        def prog(comm):
            acc = 0
            for i in range(150):
                if i % 3 == 0:
                    acc += comm.allreduce(i)
                elif i % 3 == 1:
                    acc += sum(comm.allgather(i))
                else:
                    acc += comm.scan(i)
            return acc

        r = spmd(3, prog)
        assert len(set(v is not None for v in r.values)) == 1


class TestSkewedSchedules:
    def test_one_slow_rank_charges_wait_to_others(self):
        from repro.runtime import CORI_HASWELL

        def prog(comm):
            if comm.rank == 0:
                comm.charge_compute(1e9)  # very slow rank 0
            comm.allreduce(1)
            return comm.clock

        r = run_spmd(4, prog, machine=CORI_HASWELL, timeout=30.0)
        # Everyone's clock reaches at least rank 0's compute time.
        floor = CORI_HASWELL.compute_cost(1e9)
        assert all(c >= floor for c in r.values)

    def test_sender_far_ahead_of_receiver(self):
        def prog(comm):
            # Asymmetric by design: both ranks still meet one barrier
            # and the p2p traffic is fully matched.
            if comm.rank == 0:  # spmdlint: ignore[SPMD001]
                for i in range(50):
                    comm.send(i, 1)
                comm.barrier()
                return None  # spmdlint: ignore[SPMD002]
            got = []
            comm.barrier()  # receive only after everything is queued
            for _ in range(50):
                got.append(comm.recv(0))
            return got == list(range(50))

        assert spmd(2, prog).values[1]


class TestFailureTiming:
    @pytest.mark.parametrize("fail_at", [0, 5, 19])
    def test_failure_at_any_iteration(self, fail_at):
        def prog(comm):
            for i in range(20):
                # Fault injection: rank 1 dies at a chosen iteration.
                if comm.rank == 1 and i == fail_at:  # spmdlint: ignore[SPMD004]
                    raise RuntimeError(f"die-{i}")
                comm.allreduce(i)
            return True

        with pytest.raises(RankFailedError) as ei:
            spmd(3, prog, timeout=5.0)
        assert ei.value.rank == 1

    def test_failure_during_p2p_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(1)  # rank 1 never sends
            else:
                raise ValueError("no message for you")

        with pytest.raises(RankFailedError) as ei:
            spmd(2, prog, timeout=5.0)
        assert isinstance(ei.value.causes[1], ValueError)

    def test_world_reusable_after_failure(self):
        # A failed run must not poison subsequent runs (fresh worlds).
        def bad(comm):
            raise KeyError("x")

        def good(comm):
            return comm.allreduce(1)

        with pytest.raises(RankFailedError):
            spmd(3, bad, timeout=5.0)
        assert spmd(3, good).values == [3, 3, 3]


@given(
    size=st.integers(2, 5),
    schedule=st.lists(st.sampled_from(["ar", "ag", "bar", "p2p"]),
                      min_size=1, max_size=12),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_operation_schedules(size, schedule):
    """Any uniform schedule of operations completes with consistent
    results on every rank."""

    def prog(comm):
        out = []
        for op in schedule:
            if op == "ar":
                out.append(comm.allreduce(comm.rank))
            elif op == "ag":
                out.append(tuple(comm.allgather(comm.rank)))
            elif op == "bar":
                comm.barrier()
                out.append("b")
            else:
                comm.send(comm.rank, (comm.rank + 1) % comm.size)
                out.append(comm.recv((comm.rank - 1) % comm.size))
        return out

    r = run_spmd(size, prog, machine=FREE, timeout=20.0)
    expected_ar = sum(range(size))
    for rank, out in enumerate(r.values):
        for op, val in zip(schedule, out):
            if op == "ar":
                assert val == expected_ar
            elif op == "ag":
                assert val == tuple(range(size))
            elif op == "p2p":
                assert val == (rank - 1) % size
