"""Unit tests for the declarative search space (repro.tune.space)."""

import pytest

from repro.core import LouvainConfig, Variant
from repro.core.config import DEFAULT_THRESHOLD_CYCLE
from repro.tune import THRESHOLD_CYCLES, Candidate, SearchSpace, default_space


class TestEnumeration:
    def test_deterministic(self):
        space = default_space(max_ranks=4)
        a = [c.key() for c in space.candidates(seed=0)]
        b = [c.key() for c in space.candidates(seed=0)]
        assert a == b

    def test_no_duplicates(self):
        keys = [c.key() for c in default_space().candidates(seed=0)]
        assert len(keys) == len(set(keys))

    def test_seed_stamped_on_every_config(self):
        for cand in default_space(max_ranks=2).candidates(seed=7):
            assert cand.config.seed == 7

    def test_all_candidates_valid(self):
        # Materialising as LouvainConfig already validated; spot-check
        # that non-applicable axes stay pinned to defaults.
        for cand in default_space(max_ranks=2).candidates(seed=0):
            cfg = cand.config
            if not cfg.variant.uses_early_termination:
                assert cfg.alpha == LouvainConfig().alpha
            if not cfg.variant.uses_threshold_cycling:
                assert cfg.threshold_cycle == DEFAULT_THRESHOLD_CYCLE

    def test_covers_every_variant(self):
        variants = {
            c.config.variant for c in default_space().candidates(seed=0)
        }
        assert variants == {
            Variant("baseline"), Variant("threshold-cycling"),
            Variant("et"), Variant("etc"), Variant("et+tc"),
        }

    def test_rank_axis_respects_cap(self):
        ranks = {c.ranks for c in default_space(max_ranks=4).candidates()}
        assert ranks == {1, 2, 4}


class TestValidation:
    def test_unknown_cycle_rejected(self):
        with pytest.raises(ValueError, match="unknown threshold cycle"):
            SearchSpace(threshold_cycles=("nope",))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(variants=())
        with pytest.raises(ValueError):
            SearchSpace(rank_counts=())

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(rank_counts=(0,))

    def test_bad_max_ranks_rejected(self):
        with pytest.raises(ValueError):
            default_space(max_ranks=0)

    def test_named_cycles_exist(self):
        assert THRESHOLD_CYCLES["paper"] == DEFAULT_THRESHOLD_CYCLE
        assert set(THRESHOLD_CYCLES) >= {"paper", "aggressive", "gentle"}


class TestCandidate:
    def test_key_stable_and_content_addressed(self):
        a = Candidate(config=LouvainConfig(), ranks=4)
        b = Candidate(config=LouvainConfig(), ranks=4)
        c = Candidate(config=LouvainConfig(), ranks=8)
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_transport_knobs_change_key(self):
        a = Candidate(config=LouvainConfig(), ranks=4)
        b = Candidate(
            config=LouvainConfig(community_push_updates=True), ranks=4
        )
        assert a.key() != b.key()

    def test_describe_mentions_ranks(self):
        assert "x4" in Candidate(config=LouvainConfig(), ranks=4).describe()


class TestHeuristicAxes:
    def test_space_covers_heuristic_combinations(self):
        cands = SearchSpace(
            variants=("baseline",),
            rank_counts=(2,),
            community_push=(False,),
            ghost_delta=(False,),
            repartitions=("none",),
        ).candidates()
        combos = {
            (c.config.use_coloring, c.config.vertex_following, c.config.refine)
            for c in cands
        }
        assert combos == {
            (col, vf, ref)
            for col in (False, True)
            for vf in (False, True)
            for ref in ("none", "leiden")
        }

    def test_describe_tags_heuristics(self):
        from dataclasses import replace

        from repro.core import LouvainConfig

        cfg = replace(
            LouvainConfig(),
            use_coloring=True,
            vertex_following=True,
            refine="leiden",
        )
        text = Candidate(config=cfg, ranks=2).describe()
        assert "coloring" in text
        assert "vf" in text
        assert "refine=leiden" in text

    def test_heuristics_change_candidate_key(self):
        from dataclasses import replace

        from repro.core import LouvainConfig

        base = Candidate(config=LouvainConfig(), ranks=2)
        vf = Candidate(
            config=replace(LouvainConfig(), vertex_following=True), ranks=2
        )
        assert base.key() != vf.key()
