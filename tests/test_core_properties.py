"""Property-based tests on the core algorithms (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    coarsen_csr,
    grappolo_louvain,
    louvain,
    modularity,
    modularity_bounds_ok,
    run_louvain,
)
from repro.runtime import FREE

from .conftest import assert_valid_partition, random_graph

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)

graph_params = st.tuples(
    st.integers(3, 30),   # n
    st.integers(2, 90),   # m
    st.integers(0, 2**16),
)


@given(params=graph_params, k=st.integers(1, 6), pseed=st.integers(0, 99))
@settings(**COMMON)
def test_modularity_always_in_bounds(params, k, pseed):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m, weighted=True)
    assignment = np.random.default_rng(pseed).integers(0, k, n)
    assert modularity_bounds_ok(modularity(g, assignment))


@given(params=graph_params, k=st.integers(1, 6), pseed=st.integers(0, 99))
@settings(**COMMON)
def test_coarsening_invariants(params, k, pseed):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m, weighted=True)
    assignment = np.random.default_rng(pseed).integers(0, k, n)
    meta, v2m = coarsen_csr(g, assignment)
    # Total weight conserved exactly.
    assert meta.total_weight == pytest.approx(g.total_weight)
    # Q invariant: partition on G == singletons on meta graph.
    assert modularity(g, assignment) == pytest.approx(
        modularity(meta, np.arange(meta.num_vertices)), abs=1e-10
    )
    # v2m consistent with the assignment grouping.
    for c in np.unique(assignment):
        metas = np.unique(v2m[assignment == c])
        assert len(metas) == 1
    # Degrees aggregate.
    agg = np.zeros(meta.num_vertices)
    np.add.at(agg, v2m, g.degrees())
    np.testing.assert_allclose(meta.degrees(), agg)


@given(params=graph_params)
@settings(**COMMON)
def test_serial_louvain_valid_output(params):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m)
    r = louvain(g)
    assert_valid_partition(r.assignment, n)
    assert modularity_bounds_ok(r.modularity)
    assert r.modularity == pytest.approx(
        modularity(g, r.assignment), abs=1e-9
    )
    # Louvain never ends below the all-singletons starting point by much.
    assert r.modularity >= modularity(g, np.arange(n)) - 1e-9


@given(params=graph_params)
@settings(**COMMON)
def test_grappolo_valid_output(params):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m, weighted=True)
    r = grappolo_louvain(g)
    assert_valid_partition(r.assignment, n)
    assert r.modularity == pytest.approx(
        modularity(g, r.assignment), abs=1e-9
    )


@given(params=graph_params, p=st.integers(1, 4))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_distributed_louvain_valid_output(params, p):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m)
    r = run_louvain(g, p, machine=FREE)
    assert_valid_partition(r.assignment, n)
    assert modularity_bounds_ok(r.modularity)
    assert r.modularity == pytest.approx(
        modularity(g, r.assignment), abs=1e-9
    )
