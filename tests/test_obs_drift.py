"""Drift-monitor tests: EWMA determinism, calibration, the closed loop.

The last class is the acceptance scenario for the observability PR: a
deliberately mis-calibrated machine model drives the measured/predicted
ratio over the threshold, the engine fires a forced background re-tune
against the recalibrated model, and the prediction error shrinks —
while detection outputs stay bit-identical to an engine without any
observability attached.
"""

import math
import time

import numpy as np
import pytest

from repro.obs import DriftConfig, DriftMonitor, MetricsRegistry
from repro.runtime.perfmodel import CORI_HASWELL, FREE


class TestDriftConfigValidation:
    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            DriftConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            DriftConfig(ewma_alpha=1.5)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            DriftConfig(ratio_threshold=1.0)

    def test_bad_min_observations(self):
        with pytest.raises(ValueError):
            DriftConfig(min_observations=0)


class TestEwmaDecisions:
    def test_accurate_predictions_never_retune(self):
        mon = DriftMonitor()
        for _ in range(50):
            decision = mon.observe("fam", predicted=1.0, measured=1.0)
            assert not decision.retune
            assert decision.ratio == pytest.approx(1.0)

    def test_sustained_underprediction_triggers(self):
        mon = DriftMonitor(
            config=DriftConfig(ratio_threshold=1.5, min_observations=3)
        )
        fired_at = None
        for i in range(20):
            if mon.observe("fam", predicted=1.0, measured=3.0).retune:
                fired_at = i
                break
        assert fired_at is not None
        assert fired_at >= 2  # respects min_observations

    def test_overprediction_also_triggers(self):
        # Drift is symmetric: a model predicting 3x reality drifts too.
        mon = DriftMonitor()
        decisions = [
            mon.observe("fam", predicted=3.0, measured=1.0) for _ in range(20)
        ]
        assert any(d.retune for d in decisions)
        trigger = next(d for d in decisions if d.retune)
        assert trigger.calibration < 1.0

    def test_single_spike_does_not_trigger(self):
        mon = DriftMonitor(
            config=DriftConfig(
                ewma_alpha=0.2, ratio_threshold=2.0, min_observations=5
            )
        )
        decision = mon.observe("fam", predicted=1.0, measured=100.0)
        assert not decision.retune
        for _ in range(30):
            decision = mon.observe("fam", predicted=1.0, measured=1.0)
        assert not decision.retune

    def test_deterministic_trigger_point(self):
        # Same measured sequence => same re-tune trigger index, always.
        seq = [1.4, 2.1, 1.9, 2.5, 2.2, 3.0, 2.8, 2.6, 2.9, 3.1]

        def trigger_index():
            mon = DriftMonitor()
            for i, measured in enumerate(seq):
                if mon.observe("fam", 1.0, measured).retune:
                    return i
            return None

        first = trigger_index()
        assert first is not None
        assert all(trigger_index() == first for _ in range(5))

    def test_families_independent(self):
        mon = DriftMonitor()
        for _ in range(20):
            mon.observe("drifting", 1.0, 4.0)
            ok = mon.observe("healthy", 1.0, 1.0)
            assert not ok.retune
        snap = mon.snapshot()
        assert snap["families"]["drifting"]["retunes"] >= 1
        assert snap["families"]["healthy"]["retunes"] == 0

    def test_state_resets_after_trigger(self):
        mon = DriftMonitor()
        retunes = 0
        for _ in range(12):
            if mon.observe("fam", 1.0, 3.0).retune:
                retunes += 1
                # Immediately after a trigger the EWMA restarts: the
                # next observation alone cannot re-trigger.
                assert not mon.observe("fam", 1.0, 3.0).retune
        assert retunes >= 1


class TestMachineCalibration:
    def test_calibrated_scales_cost_terms(self):
        cal = CORI_HASWELL.calibrated(2.0)
        assert cal.alpha == pytest.approx(CORI_HASWELL.alpha * 2)
        assert cal.beta == pytest.approx(CORI_HASWELL.beta * 2)
        assert cal.compute_rate == pytest.approx(
            CORI_HASWELL.compute_rate / 2
        )
        assert cal.name == "cori-haswell~cal2"

    def test_recalibration_replaces_previous_suffix(self):
        twice = CORI_HASWELL.calibrated(2.0).calibrated(3.0)
        assert twice.name == "cori-haswell~cal3"

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            CORI_HASWELL.calibrated(0.0)
        with pytest.raises(ValueError):
            CORI_HASWELL.calibrated(math.inf)

    def test_monitor_calibrates_its_machine_on_trigger(self):
        mon = DriftMonitor(machine=CORI_HASWELL)
        for _ in range(20):
            decision = mon.observe("fam", 1.0, 3.0)
            if decision.retune:
                break
        assert decision.retune
        assert mon.machine is not None
        assert mon.machine.name.startswith("cori-haswell~cal")
        # Calibration moves the model toward measured reality.
        assert decision.calibration == pytest.approx(
            math.exp(math.log(3.0) * 1.0), rel=0.5
        )

    def test_registry_series_updated(self):
        reg = MetricsRegistry()
        mon = DriftMonitor(registry=reg)
        for _ in range(10):
            mon.observe("fam", 1.0, 2.0)
        names = {f.name for f in reg.families()}
        assert "repro_drift_ratio" in names
        assert "repro_drift_observations_total" in names


class TestClosedLoop:
    """Mis-calibrated model -> drift -> forced re-tune -> smaller error."""

    @pytest.fixture()
    def graph(self):
        from repro.generators import make_graph

        return make_graph("soc-friendster", scale="tiny")

    def test_drift_fires_forced_retune_and_shrinks_error(
        self, graph, tmp_path
    ):
        from repro.obs import EventLog, read_events
        from repro.service import DetectionRequest, Engine
        from repro.tune import TuningDB
        from repro.tune.search import TunerSettings, tune_graph

        db = TuningDB(str(tmp_path / "tuning.json"))
        # Seed a tuning record with a model that underestimates cost
        # 8x: every served job will measure ~8x the prediction.
        wrong = CORI_HASWELL.calibrated(1 / 8)
        settings = TunerSettings(
            trials=2, rung_phase_caps=(1,), machine=wrong
        )
        tune_graph(graph, db, settings=settings)
        record = db.get(graph.fingerprint())
        assert record is not None

        events_path = tmp_path / "events.jsonl"
        log = EventLog(events_path)
        drift = DriftMonitor(machine=wrong)
        with Engine(
            workers=1,
            tuning_db=db,
            tune_settings=settings,
            event_log=log,
            drift=drift,
        ) as engine:
            request = DetectionRequest(
                graph=graph, nranks=2, machine=CORI_HASWELL
            )
            for _ in range(10):
                response = engine.detect(request, timeout=300)
                assert response.result is not None
            # Wait for the forced background re-tune to land.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                counters = engine.metrics.snapshot()["counters"]
                if counters.get("background_tunes", 0) >= 1:
                    break
                time.sleep(0.05)
        log.close()

        counters = engine.metrics.snapshot()["counters"]
        assert counters["drift_observations"] >= 1
        assert counters["drift_retunes"] >= 1
        retunes = read_events(events_path, event="drift_retune")
        assert retunes
        # The forced tune job actually ran against the calibrated model.
        forced = read_events(events_path, event="tune_spawned", forced=True)
        assert forced
        assert drift.machine is not None
        assert drift.machine.name != wrong.name

        # Prediction error shrinks: the calibrated model's error on the
        # measured runtime is smaller than the mis-calibrated model's.
        observed = read_events(events_path, event="drift_observed")
        measured = observed[-1]["measured"]
        from repro.tune.costmodel import predict_cost
        from repro.tune.features import compute_features
        from repro.tune.space import Candidate

        features = compute_features(graph)
        cand = Candidate(config=request.config, ranks=2)
        err_before = abs(
            math.log(
                max(measured, 1e-12)
                / predict_cost(features, cand, wrong).seconds
            )
        )
        err_after = abs(
            math.log(
                max(measured, 1e-12)
                / predict_cost(features, cand, drift.machine).seconds
            )
        )
        assert err_after < err_before

    def test_observability_is_passive(self, graph, tmp_path):
        """Detection results are bit-identical with obs on and off."""
        from repro.service import DetectionRequest, Engine
        from repro.obs import EventLog

        request = DetectionRequest(graph=graph, nranks=2, machine=FREE)
        with Engine(workers=1) as plain:
            bare = plain.detect(request, timeout=300)
        log = EventLog(tmp_path / "events.jsonl")
        with Engine(
            workers=1, event_log=log, drift=DriftMonitor(machine=CORI_HASWELL)
        ) as observed:
            dressed = observed.detect(request, timeout=300)
        log.close()
        assert bare.result is not None and dressed.result is not None
        np.testing.assert_array_equal(
            bare.result.assignment, dressed.result.assignment
        )
        assert bare.result.modularity == dressed.result.modularity
        assert bare.result.phases == dressed.result.phases
