"""Collective-footprint summaries: algebra, guards, schedule matrix."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.spmdlint import build_program
from repro.analysis.summaries import (
    Alt,
    Coll,
    Seq,
    Star,
    alt,
    config_fields_in,
    divergences,
    evaluate,
    op_counter,
    schedule_guarding_fields,
    schedule_matrix,
    seq,
    signature,
    star,
)
from repro.core.config import LouvainConfig

REPO_ROOT = Path(__file__).parent.parent


def program_from(tmp_path, source):
    mod = tmp_path / "mod.py"
    mod.write_text(textwrap.dedent(source))
    return build_program([mod])


def summary_of(tmp_path, source, name):
    program = program_from(tmp_path, source)
    fn = next(
        f for m in program.modules for f in m.functions if f.name == name
    )
    return program.analysis.summary(fn)


class TestAlgebra:
    def test_seq_flattens_and_drops_empty(self):
        fp = seq([Coll("a"), seq([Coll("b"), Seq(())])])
        assert fp.key() == "a,b"

    def test_empty_star_vanishes(self):
        assert star(Seq(()), False).key() == ""

    def test_star_key_marks_repetition(self):
        assert star(Coll("bcast"), False).key() == "(bcast)*"

    def test_data_alt_with_identical_options_collapses(self):
        assert alt((Coll("a"), Coll("a")), "data").key() == "a"

    def test_config_alt_keeps_field_visibility(self):
        fp = alt((Coll("a"), Coll("a")), "config", fields=frozenset({"f"}))
        assert isinstance(fp, Alt)
        assert fp.key() == "{a|a}c"
        assert config_fields_in(fp) == {"f"}
        # ...but an unchanged schedule is not "guarding".
        assert schedule_guarding_fields(fp) == frozenset()

    def test_op_counter_counts_static_sites(self):
        fp = seq(
            [
                Coll("barrier"),
                star(Coll("allreduce"), False),
                alt((Coll("bcast"), Seq(())), "config",
                    fields=frozenset({"f"})),
            ]
        )
        assert dict(op_counter(fp)) == {
            "barrier": 1,
            "allreduce": 1,
            "bcast": 1,
        }

    def test_signature_is_stable_and_key_based(self):
        a = seq([Coll("barrier"), Coll("allreduce")])
        b = seq([Coll("barrier"), Coll("allreduce")])
        assert signature(a) == signature(b)
        assert signature(a) != signature(Coll("barrier"))


WORKED = """
def helper(comm, x):
    return comm.allreduce(x)

def entry(comm, config, x):
    comm.barrier()
    if config.use_coloring:
        x = helper(comm, x)
    for _ in range(3):
        comm.bcast(x)
    et = object() if config.use_coloring else None
    if et is not None:
        comm.allgather(x)
    return x
"""


class TestGuardsAndInlining:
    def test_callee_inlined_and_guards_classified(self, tmp_path):
        fp = summary_of(tmp_path, WORKED, "entry")
        # helper's allreduce is inlined; both the direct config test and
        # the `x if config.f else None` + `is not None` idiom classify
        # as config alternations.
        assert fp.key() == "barrier,{|allreduce}c,(bcast)*,{|allgather}c"
        assert config_fields_in(fp) == {"use_coloring"}
        assert schedule_guarding_fields(fp) == {"use_coloring"}
        assert divergences(fp) == []

    def test_evaluate_resolves_config_alts(self, tmp_path):
        fp = summary_of(tmp_path, WORKED, "entry")
        on = evaluate(fp, LouvainConfig(use_coloring=True))
        off = evaluate(fp, LouvainConfig(use_coloring=False))
        assert on.key() == "barrier,allreduce,(bcast)*,allgather"
        assert off.key() == "barrier,(bcast)*"
        assert signature(on) != signature(off)

    def test_property_chain_guard(self, tmp_path):
        fp = summary_of(
            tmp_path,
            """
            def entry(comm, config, x):
                if config.variant.uses_inactive_exit:
                    comm.allreduce(x)
                return x
            """,
            "entry",
        )
        assert config_fields_in(fp) == {"variant"}
        from repro.core.config import Variant

        etc = evaluate(fp, LouvainConfig(variant=Variant.ETC))
        base = evaluate(fp, LouvainConfig(variant=Variant.BASELINE))
        assert "allreduce" in etc.key()
        assert "allreduce" not in base.key()

    def test_rank_guard_divergence_reported(self, tmp_path):
        fp = summary_of(
            tmp_path,
            """
            def helper(comm, x):
                return comm.allreduce(x)

            def entry(comm, x):
                if comm.rank % 2 == 0:
                    x = helper(comm, x)
                return x
            """,
            "entry",
        )
        divs = divergences(fp)
        assert len(divs) == 1
        assert divs[0].kind == "branch"
        assert "allreduce" in divs[0].describe()

    def test_rank_variant_loop_divergence(self, tmp_path):
        fp = summary_of(
            tmp_path,
            """
            def entry(comm, x):
                for _ in range(comm.rank):
                    comm.allreduce(x)
                return x
            """,
            "entry",
        )
        divs = divergences(fp)
        assert len(divs) == 1
        assert divs[0].kind == "loop"

    def test_recursion_cuts_off_as_opaque(self, tmp_path):
        fp = summary_of(
            tmp_path,
            """
            def recur(comm, x):
                comm.barrier()
                return recur(comm, x)
            """,
            "recur",
        )
        assert fp.key() == "barrier,?recur"
        # Opaque survives evaluation untouched.
        assert evaluate(fp, LouvainConfig()).key() == "barrier,?recur"

    def test_unresolvable_guard_degrades_to_data(self, tmp_path):
        fp = summary_of(
            tmp_path,
            """
            def entry(comm, flag, x):
                if flag:
                    comm.barrier()
                return x
            """,
            "entry",
        )
        assert config_fields_in(fp) == frozenset()
        # Data alternations are conservative: not rank divergence, but
        # not resolvable either.
        assert divergences(fp) == []
        assert "barrier" in fp.key()


class TestScheduleMatrix:
    @pytest.fixture(scope="class")
    def report(self):
        program = build_program([REPO_ROOT / "src" / "repro"])
        return schedule_matrix(program.analysis)

    def test_every_search_space_variant_is_divergence_free(self, report):
        assert report["entry"] == "distributed_louvain"
        assert report["summary"]["divergence_free"] is True
        assert report["summary"]["variants"] >= 5
        for row in report["rows"]:
            assert row["divergence_free"], row

    def test_rows_project_onto_guarding_fields(self, report):
        fields = report["config_fields"]
        assert "variant" in fields
        for row in report["rows"]:
            assert set(row["config"]) == set(fields)
            assert row["collectives"]

    def test_distinct_schedules_have_distinct_signatures(self, report):
        sigs = {row["signature"] for row in report["rows"]}
        assert len(sigs) == report["summary"]["distinct_schedules"]

    def test_report_is_json_serialisable(self, report):
        text = json.dumps(report, sort_keys=True)
        assert "distributed_louvain" in text

    def test_unknown_entry_raises(self):
        program = build_program([REPO_ROOT / "src" / "repro"])
        with pytest.raises(ValueError, match="no_such_entry"):
            schedule_matrix(program.analysis, entry="no_such_entry")


class TestInterproceduralTaint:
    def test_rank_predicate_helper_taints_caller(self, tmp_path):
        program = program_from(
            tmp_path,
            """
            def is_root(comm):
                return comm.rank == 0

            def entry(comm, x):
                if is_root(comm):
                    comm.barrier()
                return x
            """,
        )
        from repro.analysis.spmdlint import lint_paths

        result = lint_paths([tmp_path / "mod.py"])
        assert "SPMD001" in {f.rule for f in result.findings}

    def test_data_selection_return_does_not_taint(self, tmp_path):
        # Returning this rank's *share* of replicated data is the SPMD
        # norm; it must not mark the helper rank-returning.
        program = program_from(
            tmp_path,
            """
            def my_share(comm, parts):
                return parts[comm.rank]

            def entry(comm, parts):
                share = my_share(comm, parts)
                if share is not None:
                    comm.barrier()
                comm.barrier()
                return share
            """,
        )
        assert program.callgraph.rank_returning_names() == frozenset()

    def test_rank_argument_taints_callee_parameter(self, tmp_path):
        program = program_from(
            tmp_path,
            """
            def inner(comm, who, x):
                if who == 0:
                    comm.barrier()
                return x

            def entry(comm, x):
                return inner(comm, comm.rank, x)
            """,
        )
        from repro.analysis.spmdlint import lint_paths

        result = lint_paths([tmp_path / "mod.py"])
        findings = {f.rule for f in result.findings}
        assert "SPMD001" in findings
