"""Unit tests for Threshold Cycling and Early Termination (Eq. 3)."""

import numpy as np
import pytest

from repro.core import EarlyTermination, LouvainConfig, ThresholdCycler, Variant
from repro.core.heuristics import make_rank_rng


class TestThresholdCycler:
    def test_fig2_schedule(self):
        # Fig. 2: phases 0-2 @ 1e-3, 3-6 @ 1e-4, 7-9 @ 1e-5, 10-12 @ 1e-6.
        cyc = ThresholdCycler(LouvainConfig(variant=Variant.THRESHOLD_CYCLING))
        taus = [cyc.tau_for_phase(k) for k in range(13)]
        assert taus[:3] == [1e-3] * 3
        assert taus[3:7] == [1e-4] * 4
        assert taus[7:10] == [1e-5] * 3
        assert taus[10:13] == [1e-6] * 3

    def test_cycle_repeats_from_phase_13(self):
        cyc = ThresholdCycler(LouvainConfig(variant=Variant.THRESHOLD_CYCLING))
        assert cyc.tau_for_phase(13) == cyc.tau_for_phase(0) == 1e-3
        assert cyc.tau_for_phase(16) == cyc.tau_for_phase(3)

    def test_final_pass_pins_lowest_tau(self):
        cyc = ThresholdCycler(LouvainConfig(variant=Variant.THRESHOLD_CYCLING))
        assert not cyc.in_final_pass
        cyc.enter_final_pass()
        assert cyc.in_final_pass
        for k in range(10):
            assert cyc.tau_for_phase(k) == 1e-6

    def test_custom_schedule(self):
        cfg = LouvainConfig(
            variant=Variant.THRESHOLD_CYCLING,
            threshold_cycle=((1e-2, 2), (1e-5, 1)),
        )
        cyc = ThresholdCycler(cfg)
        assert [cyc.tau_for_phase(k) for k in range(4)] == [
            1e-2, 1e-2, 1e-5, 1e-2,
        ]
        assert cyc.final_tau == 1e-5


class TestEarlyTermination:
    def _et(self, n=100, alpha=0.5, floor=0.02, seed=0):
        cfg = LouvainConfig(
            variant=Variant.ET, alpha=alpha, et_inactive_floor=floor
        )
        return EarlyTermination(n, cfg, make_rank_rng(seed, 0, 0))

    def test_initially_all_active(self):
        et = self._et()
        assert et.draw_active().all()
        assert et.inactive_fraction() == 0.0

    def test_probability_decays_when_stationary(self):
        et = self._et(alpha=0.5)
        et.update(np.zeros(100, dtype=bool))
        np.testing.assert_allclose(et.prob, 0.5)
        et.update(np.zeros(100, dtype=bool))
        np.testing.assert_allclose(et.prob, 0.25)

    def test_move_resets_probability(self):
        et = self._et(alpha=0.5)
        et.update(np.zeros(100, dtype=bool))
        moved = np.zeros(100, dtype=bool)
        moved[7] = True
        et.update(moved)
        assert et.prob[7] == 1.0
        assert et.prob[8] == pytest.approx(0.25)

    def test_floor_makes_permanently_inactive(self):
        et = self._et(alpha=0.9, floor=0.02)
        stationary = np.zeros(100, dtype=bool)
        for _ in range(3):  # 0.1 -> 0.01 < 0.02 after two updates
            et.update(stationary)
        assert et.permanently_inactive.all()
        assert not et.draw_active().any()
        assert et.inactive_fraction() == 1.0

    def test_alpha_zero_never_decays(self):
        et = self._et(alpha=0.0)
        for _ in range(50):
            et.update(np.zeros(100, dtype=bool))
        assert et.draw_active().all()

    def test_alpha_one_inactive_after_one_stationary_iteration(self):
        et = self._et(alpha=1.0)
        et.update(np.zeros(100, dtype=bool))
        assert et.permanently_inactive.all()

    def test_draws_respect_probability_statistically(self):
        et = self._et(n=4000, alpha=0.5, seed=3)
        et.update(np.zeros(4000, dtype=bool))  # prob = 0.5
        frac = et.draw_active().mean()
        assert 0.42 < frac < 0.58

    def test_deterministic_given_seed(self):
        a = self._et(seed=5)
        b = self._et(seed=5)
        a.update(np.zeros(100, dtype=bool))
        b.update(np.zeros(100, dtype=bool))
        np.testing.assert_array_equal(a.draw_active(), b.draw_active())

    def test_update_length_checked(self):
        et = self._et()
        with pytest.raises(ValueError):
            et.update(np.zeros(3, dtype=bool))

    def test_zero_vertices(self):
        et = self._et(n=0)
        assert et.inactive_fraction() == 0.0
        assert et.update(np.zeros(0, dtype=bool)) == 0


class TestMakeRankRng:
    def test_distinct_streams_per_rank_and_phase(self):
        r00 = make_rank_rng(0, 0, 0).random(4)
        r10 = make_rank_rng(0, 1, 0).random(4)
        r01 = make_rank_rng(0, 0, 1).random(4)
        assert not np.allclose(r00, r10)
        assert not np.allclose(r00, r01)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            make_rank_rng(7, 3, 2).random(4), make_rank_rng(7, 3, 2).random(4)
        )
