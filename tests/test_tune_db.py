"""Unit tests for the persistent tuning database (repro.tune.db)."""

import json

import pytest

from repro.core import LouvainConfig
from repro.generators import make_graph
from repro.tune import (
    DB_FORMAT_VERSION,
    TuningDB,
    TuningRecord,
    compute_features,
)


def _record(g, fingerprint=None, ranks=4, **overrides):
    fields = dict(
        fingerprint=fingerprint or g.fingerprint(),
        features=compute_features(g),
        config=LouvainConfig(),
        ranks=ranks,
        predicted_seconds=0.5,
        measured_seconds=0.4,
        baseline_seconds=1.0,
        baseline_modularity=0.85,
        tuned_modularity=0.84,
        quality_tolerance=0.02,
        quality_guard_passed=True,
        tuner_seed=0,
        machine="cori-haswell",
        created=123.0,
    )
    fields.update(overrides)
    return TuningRecord(**fields)


@pytest.fixture(scope="module")
def channel():
    return make_graph("channel", scale="tiny", seed=0)


class TestInMemory:
    def test_put_get(self, channel):
        db = TuningDB()
        rec = _record(channel)
        db.put(rec)
        got = db.get(channel.fingerprint())
        assert got.fingerprint == rec.fingerprint
        assert got.last_used > 0  # hits stamp recency for LRU GC
        assert channel.fingerprint() in db
        assert len(db) == 1

    def test_miss(self, channel):
        assert TuningDB().get(channel.fingerprint()) is None

    def test_put_stamps_created(self, channel):
        db = TuningDB()
        db.put(_record(channel, created=0.0))
        assert db.get(channel.fingerprint()).created > 0

    def test_save_requires_path(self, channel):
        with pytest.raises(ValueError, match="no path"):
            TuningDB().save()


class TestPersistence:
    def test_round_trip(self, channel, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDB(path)
        rec = _record(channel)
        db.put(rec)
        again = TuningDB(path)
        loaded = again.get(channel.fingerprint())
        assert loaded is not None
        assert loaded.config == rec.config
        assert loaded.ranks == rec.ranks
        assert loaded.features == rec.features

    def test_on_disk_shape(self, channel, tmp_path):
        path = tmp_path / "db.json"
        TuningDB(path).put(_record(channel))
        doc = json.loads(path.read_text())
        assert doc["version"] == DB_FORMAT_VERSION
        assert channel.fingerprint() in doc["entries"]

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not a valid tuning DB"):
            TuningDB(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text('{"records": []}')
        with pytest.raises(ValueError, match="not a tuning DB"):
            TuningDB(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(
            json.dumps({"version": DB_FORMAT_VERSION + 1, "entries": {}})
        )
        with pytest.raises(ValueError, match="not supported"):
            TuningDB(path)

    def test_no_tmp_litter(self, channel, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDB(path)
        db.put(_record(channel))
        db.put(_record(channel, ranks=8))
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]


class TestNearest:
    def test_exact_graph_is_distance_zero(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        hit = db.nearest(compute_features(channel))
        assert hit is not None
        assert hit.distance == 0.0

    def test_similar_graph_found(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        sibling = make_graph("channel", scale="tiny", seed=3)
        hit = db.nearest(compute_features(sibling))
        assert hit is not None
        assert hit.record.fingerprint == channel.fingerprint()
        assert hit.distance > 0.0

    def test_radius_respected(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        sibling = make_graph("channel", scale="tiny", seed=3)
        assert db.nearest(
            compute_features(sibling), max_distance=1e-12
        ) is None

    def test_empty_db(self, channel):
        assert TuningDB().nearest(compute_features(channel)) is None

    def test_picks_closest(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        other = make_graph("com-orkut", scale="tiny", seed=0)
        db.put(_record(other, ranks=8))
        hit = db.nearest(
            compute_features(make_graph("channel", scale="tiny", seed=3)),
            max_distance=100.0,
        )
        assert hit.record.fingerprint == channel.fingerprint()


class TestRecord:
    def test_round_trip(self, channel):
        rec = _record(channel)
        assert TuningRecord.from_dict(rec.to_dict()) == rec

    def test_speedup(self, channel):
        assert _record(channel).speedup == pytest.approx(2.5)
        assert _record(channel, measured_seconds=0.0).speedup == float("inf")

    def test_summary_mentions_guard(self, channel):
        assert "guard ok" in _record(channel).summary()
        bad = _record(channel, quality_guard_passed=False)
        assert "FAILED" in bad.summary()


def _graphs(n):
    """Distinct tiny graphs (distinct fingerprints) for GC tests."""
    return [make_graph("channel", scale="tiny", seed=s) for s in range(n)]


class TestGarbageCollection:
    def test_validation(self):
        with pytest.raises(ValueError):
            TuningDB(max_entries=0)
        with pytest.raises(ValueError):
            TuningDB(max_age_seconds=0.0)

    def test_size_cap_evicts_lru(self):
        gs = _graphs(4)
        db = TuningDB(max_entries=3)
        for i, g in enumerate(gs[:3]):
            db.put(_record(g, created=float(i + 1)))
        # Touch the oldest record so it becomes most recently used.
        assert db.get(gs[0].fingerprint()) is not None
        db.put(_record(gs[3], created=100.0))
        assert len(db) == 3
        # gs[1] (created=2, never used) was the LRU entry.
        assert db.get(gs[1].fingerprint()) is None
        assert db.get(gs[0].fingerprint()) is not None
        assert db.gc_evictions == 1

    def test_age_prune(self):
        gs = _graphs(2)
        db = TuningDB(max_age_seconds=3600.0)
        db.put(_record(gs[0], created=1.0))  # epoch 1970: long stale
        db.put(_record(gs[1], created=0.0))  # created stamped "now"
        assert db.gc() == 0  # put() already pruned the stale one
        assert len(db) == 1
        assert db.get(gs[1].fingerprint()) is not None

    def test_get_refreshes_last_used(self):
        gs = _graphs(3)
        db = TuningDB(max_entries=2)
        db.put(_record(gs[0], created=1.0))
        db.put(_record(gs[1], created=2.0))
        # Touch the older record; the untouched one becomes the LRU.
        assert db.get(gs[0].fingerprint()).last_used > 0
        db.put(_record(gs[2], created=0.0))
        assert db.get(gs[1].fingerprint()) is None
        assert db.get(gs[0].fingerprint()) is not None

    def test_gc_on_load(self, tmp_path):
        gs = _graphs(3)
        path = tmp_path / "tune.json"
        writer = TuningDB(path)
        for i, g in enumerate(gs):
            writer.put(_record(g, created=float(i + 1)))
        assert len(writer) == 3
        capped = TuningDB(path, max_entries=2)
        assert len(capped) == 2
        assert capped.gc_evictions == 1
        # The pruned document was persisted (atomic rewrite).
        assert len(json.loads(path.read_text())["entries"]) == 2

    def test_gc_persists(self, tmp_path):
        gs = _graphs(3)
        path = tmp_path / "tune.json"
        db = TuningDB(path)
        for g in gs:
            db.put(_record(g))
        db.max_entries = 1
        assert db.gc() == 2
        assert len(TuningDB(path)) == 1

    def test_unbounded_db_never_drops(self):
        db = TuningDB()
        for g in _graphs(5):
            db.put(_record(g, created=1.0))
        assert db.gc() == 0
        assert len(db) == 5

    def test_last_used_round_trips(self, channel):
        rec = _record(channel, last_used=42.0)
        assert TuningRecord.from_dict(rec.to_dict()).last_used == 42.0
