"""Unit tests for the persistent tuning database (repro.tune.db)."""

import json

import pytest

from repro.core import LouvainConfig
from repro.generators import make_graph
from repro.tune import (
    DB_FORMAT_VERSION,
    TuningDB,
    TuningRecord,
    compute_features,
)


def _record(g, fingerprint=None, ranks=4, **overrides):
    fields = dict(
        fingerprint=fingerprint or g.fingerprint(),
        features=compute_features(g),
        config=LouvainConfig(),
        ranks=ranks,
        predicted_seconds=0.5,
        measured_seconds=0.4,
        baseline_seconds=1.0,
        baseline_modularity=0.85,
        tuned_modularity=0.84,
        quality_tolerance=0.02,
        quality_guard_passed=True,
        tuner_seed=0,
        machine="cori-haswell",
        created=123.0,
    )
    fields.update(overrides)
    return TuningRecord(**fields)


@pytest.fixture(scope="module")
def channel():
    return make_graph("channel", scale="tiny", seed=0)


class TestInMemory:
    def test_put_get(self, channel):
        db = TuningDB()
        rec = _record(channel)
        db.put(rec)
        assert db.get(channel.fingerprint()) is rec
        assert channel.fingerprint() in db
        assert len(db) == 1

    def test_miss(self, channel):
        assert TuningDB().get(channel.fingerprint()) is None

    def test_put_stamps_created(self, channel):
        db = TuningDB()
        db.put(_record(channel, created=0.0))
        assert db.get(channel.fingerprint()).created > 0

    def test_save_requires_path(self, channel):
        with pytest.raises(ValueError, match="no path"):
            TuningDB().save()


class TestPersistence:
    def test_round_trip(self, channel, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDB(path)
        rec = _record(channel)
        db.put(rec)
        again = TuningDB(path)
        loaded = again.get(channel.fingerprint())
        assert loaded is not None
        assert loaded.config == rec.config
        assert loaded.ranks == rec.ranks
        assert loaded.features == rec.features

    def test_on_disk_shape(self, channel, tmp_path):
        path = tmp_path / "db.json"
        TuningDB(path).put(_record(channel))
        doc = json.loads(path.read_text())
        assert doc["version"] == DB_FORMAT_VERSION
        assert channel.fingerprint() in doc["entries"]

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not a valid tuning DB"):
            TuningDB(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text('{"records": []}')
        with pytest.raises(ValueError, match="not a tuning DB"):
            TuningDB(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(
            json.dumps({"version": DB_FORMAT_VERSION + 1, "entries": {}})
        )
        with pytest.raises(ValueError, match="not supported"):
            TuningDB(path)

    def test_no_tmp_litter(self, channel, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDB(path)
        db.put(_record(channel))
        db.put(_record(channel, ranks=8))
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]


class TestNearest:
    def test_exact_graph_is_distance_zero(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        hit = db.nearest(compute_features(channel))
        assert hit is not None
        assert hit.distance == 0.0

    def test_similar_graph_found(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        sibling = make_graph("channel", scale="tiny", seed=3)
        hit = db.nearest(compute_features(sibling))
        assert hit is not None
        assert hit.record.fingerprint == channel.fingerprint()
        assert hit.distance > 0.0

    def test_radius_respected(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        sibling = make_graph("channel", scale="tiny", seed=3)
        assert db.nearest(
            compute_features(sibling), max_distance=1e-12
        ) is None

    def test_empty_db(self, channel):
        assert TuningDB().nearest(compute_features(channel)) is None

    def test_picks_closest(self, channel):
        db = TuningDB()
        db.put(_record(channel))
        other = make_graph("com-orkut", scale="tiny", seed=0)
        db.put(_record(other, ranks=8))
        hit = db.nearest(
            compute_features(make_graph("channel", scale="tiny", seed=3)),
            max_distance=100.0,
        )
        assert hit.record.fingerprint == channel.fingerprint()


class TestRecord:
    def test_round_trip(self, channel):
        rec = _record(channel)
        assert TuningRecord.from_dict(rec.to_dict()) == rec

    def test_speedup(self, channel):
        assert _record(channel).speedup == pytest.approx(2.5)
        assert _record(channel, measured_seconds=0.0).speedup == float("inf")

    def test_summary_mentions_guard(self, channel):
        assert "guard ok" in _record(channel).summary()
        bad = _record(channel, quality_guard_passed=False)
        assert "FAILED" in bad.summary()
