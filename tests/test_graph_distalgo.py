"""Unit tests for distributed graph algorithms."""

import numpy as np
import pytest

from repro.graph import CSRGraph, DistGraph, EdgeList, connected_components
from repro.graph.distalgo import (
    distributed_components,
    distributed_degree_histogram,
    distributed_label_counts,
    distributed_num_components,
    distributed_total_weight,
)
from repro.runtime import FREE, run_spmd

from .conftest import random_graph


def run_components(g, nranks):
    def prog(comm):
        dg = DistGraph.distribute(comm, g, partition="even_vertex")
        return distributed_components(comm, dg).tolist()

    r = run_spmd(nranks, prog, machine=FREE, timeout=30.0)
    return np.array([x for v in r.values for x in v])


class TestDistributedComponents:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_serial(self, nranks):
        g = EdgeList.from_arrays(
            9, [0, 1, 3, 4, 6, 7], [1, 2, 4, 5, 7, 8]
        ).to_csr()
        labels = run_components(g, nranks)
        serial = connected_components(g)
        np.testing.assert_array_equal(labels, serial)

    def test_connected_graph_single_label(self, planted_blocks):
        labels = run_components(planted_blocks, 3)
        assert np.all(labels == 0)

    def test_isolated_vertices(self):
        g = CSRGraph.empty(5)
        labels = run_components(g, 2)
        np.testing.assert_array_equal(labels, np.arange(5))

    def test_random_graphs_match_serial(self):
        for seed in range(4):
            g = random_graph(np.random.default_rng(seed), 25, 20)
            labels = run_components(g, 3)
            np.testing.assert_array_equal(labels, connected_components(g))

    def test_long_path_worst_case(self):
        # Diameter-bound propagation: a path needs n-1 rounds.
        n = 20
        g = EdgeList.from_arrays(n, np.arange(n - 1), np.arange(1, n)).to_csr()
        labels = run_components(g, 4)
        assert np.all(labels == 0)


class TestNumComponents:
    def test_counts(self):
        g = EdgeList.from_arrays(
            7, [0, 1, 3, 4], [1, 2, 4, 5]
        ).to_csr()  # components: {0,1,2}, {3,4,5}, {6}

        def prog(comm):
            dg = DistGraph.distribute(comm, g, partition="even_vertex")
            return distributed_num_components(comm, dg)

        r = run_spmd(3, prog, machine=FREE, timeout=30.0)
        assert r.values == [3, 3, 3]


class TestDegreeHistogram:
    def test_total_count_matches_vertices(self, planted_blocks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            edges, counts = distributed_degree_histogram(comm, dg)
            return int(counts.sum()), edges.tolist()

        r = run_spmd(4, prog, machine=FREE, timeout=30.0)
        for total, edges in r.values:
            assert total == planted_blocks.num_vertices
        # All ranks agree on the bin edges.
        assert len({tuple(e) for _, e in r.values}) == 1

    def test_star_histogram_has_hub_bin(self, star_graph):
        def prog(comm):
            dg = DistGraph.distribute(comm, star_graph, "even_vertex")
            return distributed_degree_histogram(comm, dg)

        edges, counts = run_spmd(
            2, prog, machine=FREE, timeout=30.0
        ).values[0]
        # 8 leaves of degree 1 and one hub of degree 8.
        assert counts.sum() == 9
        assert edges.max() >= 8


class TestTotalWeight:
    @pytest.mark.parametrize("nranks", [1, 3, 5])
    def test_matches_graph(self, planted_blocks, nranks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            return distributed_total_weight(comm, dg)

        r = run_spmd(nranks, prog, machine=FREE, timeout=30.0)
        for v in r.values:
            assert v == pytest.approx(planted_blocks.total_weight)


class TestLabelCounts:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_global_bincount(self, planted_blocks, nranks):
        n = planted_blocks.num_vertices
        rng = np.random.default_rng(7)
        labels = rng.integers(0, n, size=n)
        expected = np.bincount(labels, minlength=n)

        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks, "even_vertex")
            uniq, counts = distributed_label_counts(
                comm, dg, labels[dg.vbegin : dg.vend]
            )
            return uniq.tolist(), counts.tolist()

        r = run_spmd(nranks, prog, machine=FREE, timeout=30.0)
        for uniq, counts in r.values:
            assert uniq == sorted(set(uniq))
            for lab, cnt in zip(uniq, counts):
                assert cnt == expected[lab]

    def test_length_mismatch_raises(self, planted_blocks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks, "even_vertex")
            try:
                distributed_label_counts(
                    comm, dg, np.zeros(dg.num_local + 1, dtype=np.int64)
                )
            except ValueError:
                # Keep the collective schedule aligned across ranks.
                return distributed_label_counts(
                    comm,
                    dg,
                    np.full(dg.num_local, dg.vbegin, dtype=np.int64),
                )[1].sum()
            return -1

        r = run_spmd(2, prog, machine=FREE, timeout=30.0)
        # Every rank raised, then counted its own constant label.
        for v in r.values:
            assert v != -1
