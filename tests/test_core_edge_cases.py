"""Edge-case coverage for the full Louvain stack."""

import numpy as np
import pytest

from repro.core import (
    LouvainConfig,
    grappolo_louvain,
    louvain,
    modularity,
    run_louvain,
)
from repro.graph import CSRGraph, EdgeList
from repro.runtime import FREE

from .conftest import assert_valid_partition


def every_impl(g, nranks=3):
    yield "serial", louvain(g)
    yield "grappolo", grappolo_louvain(g)
    yield "distributed", run_louvain(g, nranks, machine=FREE)


class TestDegenerateGraphs:
    def test_single_vertex(self):
        g = CSRGraph.empty(1)
        for name, r in every_impl(g, nranks=2):
            assert r.num_communities == 1, name
            assert r.modularity == 0.0, name

    def test_single_edge(self):
        g = EdgeList.from_arrays(2, [0], [1]).to_csr()
        for name, r in every_impl(g, nranks=2):
            assert r.num_communities == 1, name

    def test_self_loops_only(self):
        g = EdgeList.from_arrays(3, [0, 1, 2], [0, 1, 2]).to_csr()
        for name, r in every_impl(g):
            # Each vertex keeps its own (self-loop) community.
            assert r.num_communities == 3, name
            assert r.modularity > 0.0, name

    def test_complete_graph_single_community(self):
        n = 8
        iu, iv = np.triu_indices(n, k=1)
        g = EdgeList.from_arrays(n, iu, iv).to_csr()
        for name, r in every_impl(g):
            assert r.num_communities == 1, name
            assert r.modularity == pytest.approx(0.0, abs=1e-9), name

    def test_two_isolated_cliques(self):
        edges = []
        for base in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append((base + i, base + j))
        u, v = zip(*edges)
        g = EdgeList.from_arrays(8, np.array(u), np.array(v)).to_csr()
        for name, r in every_impl(g):
            assert r.num_communities == 2, name
            assert r.modularity == pytest.approx(0.5), name

    def test_extreme_weight_ratio(self):
        g = EdgeList.from_arrays(
            4, [0, 1, 2], [1, 2, 3], [1e12, 1e-12, 1e12]
        ).to_csr()
        for name, r in every_impl(g, nranks=2):
            assert r.assignment[0] == r.assignment[1], name
            assert r.assignment[2] == r.assignment[3], name
            assert r.assignment[0] != r.assignment[2], name

    def test_all_vertices_isolated(self):
        g = CSRGraph.empty(7)
        for name, r in every_impl(g):
            assert r.num_communities == 7, name
            assert_valid_partition(r.assignment, 7)


class TestExtremeConfigs:
    def test_huge_tau_one_iteration(self, planted_blocks):
        cfg = LouvainConfig(tau=0.9)
        r = run_louvain(planted_blocks, 3, cfg, machine=FREE)
        # With an enormous tau the run stops almost immediately but the
        # output is still a valid (coarse) partition.
        assert_valid_partition(r.assignment, 200)
        assert r.total_iterations <= 4

    def test_tiny_tau_still_terminates(self, planted_blocks):
        cfg = LouvainConfig(tau=1e-15)
        r = run_louvain(planted_blocks, 3, cfg, machine=FREE)
        assert r.num_phases < cfg.max_phases
        assert r.modularity > 0.8

    def test_alpha_one_et_converges(self, planted_blocks):
        from repro.core import Variant

        cfg = LouvainConfig(variant=Variant.ET, alpha=1.0)
        r = run_louvain(planted_blocks, 3, cfg, machine=FREE)
        assert r.modularity > 0.6

    def test_many_ranks_tiny_graph(self, two_cliques):
        r = run_louvain(two_cliques, 10, machine=FREE)
        assert r.num_communities == 2
        assert r.modularity == pytest.approx(0.45238095, abs=1e-6)

    def test_reported_q_consistent_for_all_degenerates(self):
        graphs = [
            CSRGraph.empty(3),
            EdgeList.from_arrays(2, [0], [1]).to_csr(),
            EdgeList.from_arrays(2, [0, 1], [0, 1]).to_csr(),
        ]
        for g in graphs:
            r = run_louvain(g, 2, machine=FREE)
            assert r.modularity == pytest.approx(
                modularity(g, r.assignment), abs=1e-12
            )
