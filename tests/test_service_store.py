"""Unit tests for the content-addressed result store (LRU + disk tier)."""

import numpy as np

from repro.core import LouvainConfig
from repro.core.distlouvain import run_louvain
from repro.generators import make_graph
from repro.service import ResultStore


def _result(seed=0):
    g = make_graph("soc-friendster", scale="tiny")
    return run_louvain(g, 2, LouvainConfig(seed=seed))


def _assert_identical(a, b):
    assert np.array_equal(a.assignment, b.assignment)
    assert a.modularity == b.modularity
    assert a.elapsed == b.elapsed
    assert a.num_phases == b.num_phases


class TestMemoryTier:
    def test_put_get_round_trip(self):
        store = ResultStore(capacity=4)
        r = _result()
        store.put("k1", r)
        got = store.get("k1")
        assert got is not None
        _assert_identical(got, r)

    def test_get_returns_copy(self):
        store = ResultStore(capacity=4)
        store.put("k1", _result())
        a = store.get("k1")
        a.assignment[:] = -1
        b = store.get("k1")
        assert b.assignment.min() >= 0, "cached entry was mutated via a hit"

    def test_miss_counts(self):
        store = ResultStore(capacity=4)
        assert store.get("absent") is None
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0

    def test_lru_evicts_oldest(self):
        store = ResultStore(capacity=2)
        r = _result()
        store.put("a", r)
        store.put("b", r)
        store.put("c", r)
        assert "a" not in store
        assert "b" in store and "c" in store
        assert store.stats()["evictions"] == 1

    def test_hit_refreshes_recency(self):
        store = ResultStore(capacity=2)
        r = _result()
        store.put("a", r)
        store.put("b", r)
        assert store.get("a") is not None  # a is now most-recent
        store.put("c", r)  # evicts b, not a
        assert "a" in store and "b" not in store


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        r = _result()
        store1 = ResultStore(capacity=4, directory=str(tmp_path))
        store1.put("k1", r)

        store2 = ResultStore(capacity=4, directory=str(tmp_path))
        got = store2.get("k1")
        assert got is not None
        _assert_identical(got, r)

    def test_disk_survives_memory_eviction(self, tmp_path):
        store = ResultStore(capacity=1, directory=str(tmp_path))
        r = _result()
        store.put("a", r)
        store.put("b", r)  # evicts "a" from memory; disk copy remains
        got = store.get("a")
        assert got is not None
        _assert_identical(got, r)

    def test_distinct_keys_distinct_entries(self, tmp_path):
        store = ResultStore(capacity=4, directory=str(tmp_path))
        r0, r1 = _result(seed=0), _result(seed=1)
        store.put("k0", r0)
        store.put("k1", r1)
        _assert_identical(store.get("k0"), r0)
        _assert_identical(store.get("k1"), r1)
        assert len(store) == 2
        assert set(store.keys()) == {"k0", "k1"}


class TestDiskCapacity:
    def test_requires_directory(self):
        import pytest

        with pytest.raises(ValueError, match="requires a directory"):
            ResultStore(disk_capacity=2)
        with pytest.raises(ValueError, match="disk_capacity"):
            ResultStore(directory="/tmp/x", disk_capacity=0)

    def test_eviction_keeps_newest(self, tmp_path):
        store = ResultStore(
            capacity=8, directory=str(tmp_path), disk_capacity=2
        )
        r = _result()
        store.put("a", r)
        store.put("b", r)
        store.put("c", r)  # exceeds the cap: "a" (oldest) must go
        assert store.disk_keys() == ["b", "c"]
        assert store.stats()["disk_evictions"] == 1
        assert store.stats()["disk_entries"] == 2
        assert not (tmp_path / "a.npz").exists()

    def test_disk_hit_refreshes_recency(self, tmp_path):
        store = ResultStore(
            capacity=1, directory=str(tmp_path), disk_capacity=2
        )
        r = _result()
        store.put("a", r)
        store.put("b", r)  # "a" drops out of the memory tier (cap 1)
        assert store.get("a") is not None  # disk hit: "a" now most-recent
        store.put("c", r)  # evicts "b", not "a"
        assert store.disk_keys() == ["a", "c"]

    def test_memory_tier_unaffected(self, tmp_path):
        store = ResultStore(
            capacity=8, directory=str(tmp_path), disk_capacity=1
        )
        r = _result()
        store.put("a", r)
        store.put("b", r)  # disk keeps only "b"; memory keeps both
        assert set(store.keys()) == {"a", "b"}
        assert store.disk_keys() == ["b"]
        got = store.get("a")  # served from memory despite disk eviction
        assert got is not None
        _assert_identical(got, r)
