"""Unit tests for the ghost-delta-update and resolution extensions."""

import numpy as np
import pytest

from repro.core import LouvainConfig, Variant, louvain, modularity, run_louvain
from repro.graph import EdgeList
from repro.runtime import CORI_HASWELL, FREE


class TestGhostDeltaUpdates:
    def test_identical_results(self, planted_blocks):
        full = run_louvain(planted_blocks, 4, machine=FREE)
        delta = run_louvain(
            planted_blocks, 4, LouvainConfig(ghost_delta_updates=True),
            machine=FREE,
        )
        np.testing.assert_array_equal(full.assignment, delta.assignment)
        assert full.modularity == delta.modularity

    def test_reduces_traffic(self, planted_blocks):
        full = run_louvain(planted_blocks, 4, machine=CORI_HASWELL)
        delta = run_louvain(
            planted_blocks, 4, LouvainConfig(ghost_delta_updates=True),
            machine=CORI_HASWELL,
        )
        assert delta.trace.total_bytes < full.trace.total_bytes

    def test_identical_with_et(self, planted_blocks):
        cfg_full = LouvainConfig(variant=Variant.ET, alpha=0.5)
        cfg_delta = LouvainConfig(
            variant=Variant.ET, alpha=0.5, ghost_delta_updates=True
        )
        a = run_louvain(planted_blocks, 4, cfg_full, machine=FREE)
        b = run_louvain(planted_blocks, 4, cfg_delta, machine=FREE)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("nranks", [1, 2, 3, 8])
    def test_all_rank_counts(self, planted_blocks, nranks):
        cfg = LouvainConfig(ghost_delta_updates=True)
        r = run_louvain(planted_blocks, nranks, cfg, machine=FREE)
        assert r.modularity == pytest.approx(
            modularity(planted_blocks, r.assignment), abs=1e-9
        )


class TestResolutionParameter:
    def test_validation(self):
        with pytest.raises(ValueError):
            LouvainConfig(resolution=0.0)
        with pytest.raises(ValueError):
            LouvainConfig(resolution=-1.0)

    def test_modularity_function_gamma(self, two_cliques):
        a = np.array([0] * 5 + [1] * 5)
        q1 = modularity(two_cliques, a, resolution=1.0)
        q2 = modularity(two_cliques, a, resolution=2.0)
        # Higher gamma penalises the degree term more.
        assert q2 < q1

    def test_low_gamma_merges_communities(self, two_cliques):
        # gamma -> 0 makes any merge profitable: one community wins.
        r = run_louvain(
            two_cliques, 2, LouvainConfig(resolution=0.05), machine=FREE
        )
        assert r.num_communities == 1

    def test_high_gamma_splits_communities(self):
        # A clique chain: at gamma=1 Louvain merges pairs of cliques at
        # this scale; a high gamma keeps each clique separate.
        edges = []
        cliques, size = 6, 4
        for c in range(cliques):
            base = c * size
            for i in range(size):
                for j in range(i + 1, size):
                    edges.append((base + i, base + j))
            if c + 1 < cliques:
                edges.append((base, base + size))
        u, v = zip(*edges)
        g = EdgeList.from_arrays(
            cliques * size, np.array(u), np.array(v)
        ).to_csr()
        lo = run_louvain(g, 2, LouvainConfig(resolution=0.4), machine=FREE)
        hi = run_louvain(g, 2, LouvainConfig(resolution=2.5), machine=FREE)
        assert hi.num_communities > lo.num_communities
        assert hi.num_communities == cliques

    def test_serial_matches_distributed_gamma(self, planted_blocks):
        cfg = LouvainConfig(resolution=1.5)
        s = louvain(planted_blocks, cfg)
        d = run_louvain(planted_blocks, 2, cfg, machine=FREE)
        assert d.modularity == pytest.approx(s.modularity, abs=0.05)

    def test_reported_q_uses_gamma(self, planted_blocks):
        cfg = LouvainConfig(resolution=2.0)
        r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
        assert r.modularity == pytest.approx(
            modularity(planted_blocks, r.assignment, resolution=2.0),
            abs=1e-9,
        )
