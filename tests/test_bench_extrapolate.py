"""Unit tests for the strong-scaling extrapolation model."""

import pytest

from repro.bench.extrapolate import calibrate, observe_run
from repro.core import run_louvain
from repro.generators import dataset, make_graph
from repro.runtime import CORI_HASWELL


@pytest.fixture(scope="module")
def workload():
    g = make_graph("com-orkut", scale="tiny")
    machine = CORI_HASWELL.scaled(dataset("com-orkut").edge_scale_factor(g))
    return g, machine


@pytest.fixture(scope="module")
def model(workload):
    g, machine = workload
    return calibrate(g, machine=machine, p_low=2, p_high=8)


class TestCalibrate:
    def test_anchored_at_high_reference(self, workload, model):
        g, machine = workload
        sim = run_louvain(g, 8, machine=machine).elapsed
        assert model.predict(8) == pytest.approx(sim, rel=0.05)

    def test_tracks_simulation_nearby(self, workload, model):
        g, machine = workload
        for p in (2, 4, 16):
            sim = run_louvain(g, p, machine=machine).elapsed
            assert model.predict(p) == pytest.approx(sim, rel=0.6), p

    def test_positive_parameters(self, model):
        assert model.compute_ops > 0
        assert model.volume_inf > 0
        assert model.alltoall_rounds > 0
        assert model.allreduce_rounds > 0

    def test_invalid_reference_points(self, workload):
        g, machine = workload
        with pytest.raises(ValueError):
            calibrate(g, machine=machine, p_low=8, p_high=2)
        with pytest.raises(ValueError):
            calibrate(g, machine=machine, p_low=1, p_high=8)


class TestPredictions:
    def test_scaling_then_saturation_shape(self, model):
        # Falls with p in the compute regime...
        assert model.predict(32) < model.predict(8)
        # ...and eventually rises when alltoall latency dominates.
        sweet = model.sweet_spot(1 << 16)
        assert model.predict(sweet * 16) > model.predict(sweet)

    def test_sweet_spot_in_papers_range(self, model):
        # The paper observes scaling end points around 1K-2K processes
        # for moderate/large inputs (§V-A); the model should land in
        # that order of magnitude.
        assert 64 <= model.sweet_spot(1 << 16) <= 1 << 13

    def test_curve_matches_pointwise(self, model):
        curve = dict(model.predict_curve([16, 64]))
        assert curve[16] == model.predict(16)
        assert curve[64] == model.predict(64)

    def test_invalid_p(self, model):
        with pytest.raises(ValueError):
            model.predict(0)


class TestObserveRun:
    def test_observables_populated(self, workload):
        g, machine = workload
        obs = observe_run(g, 4, None, machine)
        assert obs.nranks == 4
        assert obs.elapsed > 0
        assert obs.compute_seconds > 0
        assert obs.comm_bytes > 0
        assert obs.alltoall_rounds > 0
        assert obs.allreduce_rounds > 0
