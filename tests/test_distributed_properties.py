"""Property-based tests of the distributed building blocks (hypothesis).

These close the loop on the distributed/serial equivalences that the
fixed-input unit tests spot-check:

* distributed graph reconstruction == serial coarsening, for arbitrary
  graphs, assignments and rank counts;
* distributed coloring is always proper and partition-invariant;
* incremental warm starts never corrupt the result invariants.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import coarsen_csr, modularity
from repro.core.coarsen import rebuild_distributed
from repro.core.coloring import distributed_coloring, verify_coloring
from repro.core.dynamic import incremental_louvain
from repro.graph import DistGraph
from repro.runtime import FREE, run_spmd

from .conftest import assert_valid_partition, random_graph

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

graph_params = st.tuples(
    st.integers(4, 28),     # n
    st.integers(2, 80),     # m
    st.integers(0, 2**16),  # seed
)


@given(params=graph_params, p=st.integers(1, 4), k=st.integers(1, 6),
       pseed=st.integers(0, 99))
@settings(**COMMON)
def test_distributed_rebuild_matches_serial(params, p, k, pseed):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m, weighted=True)
    assignment = np.random.default_rng(pseed).integers(0, k, n).astype(
        np.int64
    )
    # Community ids must live in the vertex-id space for the distributed
    # algorithm: map label -> smallest member vertex.
    from repro.core.distlouvain import _labels_to_vertex_space

    assignment = _labels_to_vertex_space(assignment)

    def prog(comm):
        dg = DistGraph.distribute(comm, g, partition="even_vertex")
        plan = dg.build_ghost_plan(comm)
        local = assignment[dg.vbegin:dg.vend]
        ghost = assignment[plan.ghost_ids]
        new_dg, local_new = rebuild_distributed(comm, dg, local, ghost)
        return (
            new_dg.num_global_vertices,
            float(new_dg.weights.sum()),
            local_new.tolist(),
        )

    results = run_spmd(p, prog, machine=FREE, timeout=30.0)
    meta, v2m = coarsen_csr(g, assignment)
    combined = [x for v in results.values for x in v[2]]
    np.testing.assert_array_equal(combined, v2m)
    for n_new, _, _ in results.values:
        assert n_new == meta.num_vertices
    assert sum(v[1] for v in results.values) == pytest.approx(
        meta.total_weight
    )


@given(params=graph_params, p=st.integers(1, 4), seed2=st.integers(0, 9))
@settings(**COMMON)
def test_distributed_coloring_always_proper(params, p, seed2):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m)

    def prog(comm):
        dg = DistGraph.distribute(comm, g, partition="even_vertex")
        plan = dg.build_ghost_plan(comm)
        colors = distributed_coloring(comm, dg, plan, seed=seed2)
        return verify_coloring(comm, dg, colors, plan), colors.tolist()

    r = run_spmd(p, prog, machine=FREE, timeout=30.0)
    assert all(v[0] for v in r.values)


@given(params=graph_params, seed2=st.integers(0, 9))
@settings(**COMMON)
def test_coloring_partition_invariant(params, seed2):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m)

    def collect(p):
        def prog(comm):
            dg = DistGraph.distribute(comm, g, partition="even_vertex")
            return distributed_coloring(comm, dg, seed=seed2).tolist()

        r = run_spmd(p, prog, machine=FREE, timeout=30.0)
        return [c for v in r.values for c in v]

    assert collect(1) == collect(3)


@given(params=graph_params, p=st.integers(1, 4),
       labels_seed=st.integers(0, 99))
@settings(**COMMON)
def test_warm_start_any_labels_valid(params, p, labels_seed):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m)
    labels = np.random.default_rng(labels_seed).integers(-5, 5, n)

    r = incremental_louvain(g, labels, nranks=p, machine=FREE)
    assert_valid_partition(r.assignment, n)
    assert r.modularity == pytest.approx(
        modularity(g, r.assignment), abs=1e-9
    )
