"""Unit tests for the owner-push community cache internals."""

import numpy as np
import pytest

from repro.core import aggregate_deltas, pack_info, unpack_info
from repro.core.commcache import COMM_INFO_DTYPE, CommunityCache, _membership
from repro.graph import DistGraph, EdgeList
from repro.runtime import FREE, run_spmd


def ring_graph(n=12):
    return EdgeList.from_arrays(
        n, np.arange(n), (np.arange(n) + 1) % n
    ).to_csr()


class TestPacking:
    def test_roundtrip(self):
        ids = np.array([3, 7, 11], dtype=np.int64)
        tot = np.array([1.5, 2.0, 0.25])
        size = np.array([2, 5, 1], dtype=np.int64)
        packed = pack_info(ids, tot, size)
        assert packed.dtype == COMM_INFO_DTYPE
        assert packed.nbytes == 3 * 24
        i, t, s = unpack_info(packed)
        np.testing.assert_array_equal(i, ids)
        np.testing.assert_array_equal(t, tot)
        np.testing.assert_array_equal(s, size)

    def test_empty(self):
        packed = pack_info(
            np.empty(0, np.int64), np.empty(0), np.empty(0, np.int64)
        )
        assert packed.nbytes == 0


class TestAggregateDeltas:
    def test_nets_out_per_community(self):
        # v0: 5 -> 9 (k=2), v1: 9 -> 5 (k=3), v2: 5 -> 5 stays? no —
        # propose_moves only reports movers, but a mover may land in a
        # community another mover left.
        old = np.array([5, 9, 2])
        new = np.array([9, 5, 5])
        deg = np.array([2.0, 3.0, 1.0])
        uniq, dtot, dsize = aggregate_deltas(old, new, deg)
        np.testing.assert_array_equal(uniq, [2, 5, 9])
        np.testing.assert_allclose(dtot, [-1.0, -2.0 + 3.0 + 1.0, 2.0 - 3.0])
        np.testing.assert_array_equal(dsize, [-1, 1, 0])

    def test_net_zero_ids_are_kept(self):
        # A swap leaves both communities net-zero, but the ids must
        # still appear (the push protocol relies on them marking the
        # community "changed" so hinted info rides the same exchange).
        uniq, dtot, dsize = aggregate_deltas(
            np.array([4]), np.array([4]), np.array([2.0])
        )
        np.testing.assert_array_equal(uniq, [4])
        np.testing.assert_array_equal(dtot, [0.0])
        np.testing.assert_array_equal(dsize, [0])


class TestMembership:
    def test_basic(self):
        sorted_ids = np.array([2, 5, 9])
        np.testing.assert_array_equal(
            _membership(sorted_ids, np.array([1, 2, 5, 8, 9, 10])),
            [False, True, True, False, True, False],
        )

    def test_empty_either_side(self):
        assert _membership(np.empty(0), np.array([1])).tolist() == [False]
        assert _membership(np.array([1]), np.empty(0)).tolist() == []


class TestApplyPush:
    def _cache(self):
        dg = DistGraph.from_global(ring_graph(), np.array([0, 6, 12]), 0)
        return CommunityCache(dg, comm_size=2)

    def test_overwrites_known_and_inserts_unknown(self):
        c = self._cache()
        c._insert(
            pack_info(
                np.array([6, 8]), np.array([1.0, 2.0]), np.array([1, 2])
            )
        )
        # Push: update 8, introduce 7 (a hint-driven subscription).
        c._apply_push(
            pack_info(
                np.array([8, 7]), np.array([9.0, 4.0]), np.array([5, 3])
            )
        )
        np.testing.assert_array_equal(c.ids, [6, 7, 8])
        np.testing.assert_array_equal(c.tot, [1.0, 4.0, 9.0])
        np.testing.assert_array_equal(c.size, [1, 3, 5])
        assert c.pushed_entries == 2

    def test_pure_overwrite_keeps_length(self):
        c = self._cache()
        c._insert(pack_info(np.array([10]), np.array([1.0]), np.array([1])))
        c._apply_push(
            pack_info(np.array([10]), np.array([7.5]), np.array([4]))
        )
        assert len(c.ids) == 1
        assert c.tot[0] == 7.5 and c.size[0] == 4


class TestSubscriptions:
    def test_subscribe_unions(self):
        dg = DistGraph.from_global(ring_graph(), np.array([0, 6, 12]), 0)
        c = CommunityCache(dg, comm_size=2)
        c.subscribe(1, np.array([3, 1]))
        c.subscribe(1, np.array([1, 5]))
        np.testing.assert_array_equal(c.subs[1], [1, 3, 5])
        assert len(c.subs[0]) == 0


class TestHintDedup:
    def test_repeat_hints_cost_nothing(self):
        """The same (community, subscriber) pair hinted twice must only
        ship once — subscriptions are permanent."""
        g = ring_graph()

        def prog(comm):
            dg = DistGraph.from_global(g, np.array([0, 6, 12]), comm.rank)
            cache = CommunityCache(dg, comm.size)
            tot = dg.local_degrees()
            size = np.ones(dg.num_local, dtype=np.int64)
            empty = np.empty(0, np.int64)
            emptyf = np.empty(0)
            # Rank 0 hints (community 7 — owned by rank 1 — subscriber
            # rank 0) in two successive rounds; only the first counts.
            for _ in range(2):
                if comm.rank == 0:
                    cache.exchange_deltas(
                        comm, empty, empty, emptyf, tot, size,
                        hint_ids=np.array([7]),
                        hint_ranks=np.array([0]),
                    )
                else:
                    cache.exchange_deltas(
                        comm, empty, empty, emptyf, tot, size
                    )
            return cache.hinted_pairs

        r = run_spmd(2, prog, machine=FREE, timeout=15.0)
        assert r.values == [1, 0]

    def test_self_owned_hints_dropped(self):
        g = ring_graph()

        def prog(comm):
            dg = DistGraph.from_global(g, np.array([0, 6, 12]), comm.rank)
            cache = CommunityCache(dg, comm.size)
            tot = dg.local_degrees()
            size = np.ones(dg.num_local, dtype=np.int64)
            empty = np.empty(0, np.int64)
            # Hinting "rank r may reference a community r owns" is
            # useless: owned info never goes through the cache.
            cache.exchange_deltas(
                comm, empty, empty, np.empty(0), tot, size,
                hint_ids=np.array([dg.vbegin + 1 if comm.rank == 1 else 7]),
                hint_ranks=np.array([comm.rank if comm.rank == 1 else 1]),
            )
            return cache.hinted_pairs

        r = run_spmd(2, prog, machine=FREE, timeout=15.0)
        # Rank 1 hinted (own-community, self): dropped. Rank 0 hinted
        # (7, rank 1) where 7 is owned by rank 1: also dropped.
        assert r.values == [0, 0]


class TestColdFetch:
    def test_miss_after_cold_start_raises(self):
        g = ring_graph()

        def prog(comm):
            dg = DistGraph.from_global(g, np.array([0, 6, 12]), comm.rank)
            cache = CommunityCache(dg, comm.size)
            tot = dg.local_degrees()
            size = np.ones(dg.num_local, dtype=np.int64)
            first = np.array([5, 6]) if comm.rank == 0 else np.array([0, 11])
            cache.fetch(comm, first, tot, size, prefetch=first)
            assert not cache.cold
            # Referencing an id that was neither prefetched nor hinted
            # violates the no-miss invariant.
            stranger = np.array([8]) if comm.rank == 0 else np.array([2])
            with pytest.raises(RuntimeError, match="cache miss"):
                cache.fetch(comm, stranger, tot, size)
            return True

        assert all(run_spmd(2, prog, machine=FREE, timeout=15.0).values)

    def test_cold_fetch_values_match_owner_state(self):
        g = ring_graph()

        def prog(comm):
            dg = DistGraph.from_global(g, np.array([0, 6, 12]), comm.rank)
            cache = CommunityCache(dg, comm.size)
            tot = dg.local_degrees()
            size = np.arange(1, dg.num_local + 1, dtype=np.int64)
            needed = np.arange(12)
            got_tot, got_size = cache.fetch(
                comm, needed, tot, size, prefetch=needed
            )
            return got_tot.tolist(), got_size.tolist()

        r = run_spmd(2, prog, machine=FREE, timeout=15.0)
        # Every rank sees the global (a_c, |c|) vectors.
        expected_tot = [2.0] * 12
        expected_size = [1, 2, 3, 4, 5, 6] * 2
        for got_tot, got_size in r.values:
            assert got_tot == expected_tot
            assert got_size == expected_size
