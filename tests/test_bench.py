"""Unit tests for the benchmark harness and table formatting."""

import pytest

from repro.bench import (
    SweepResultSet,
    format_series,
    format_table,
    run_variant_sweep,
    speedup_table,
    strong_scaling_curve,
)
from repro.core import PAPER_VARIANTS, LouvainConfig, Variant
from repro.runtime import CORI_HASWELL


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "Q"], [["channel", 0.943], ["orkut", 0.4721]],
            title="Table II",
        )
        lines = text.splitlines()
        assert lines[0] == "Table II"
        assert "channel" in text
        assert "0.943" in text
        # Header separator present.
        assert set(lines[2]) <= {"-", "+"}

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_rendering(self):
        text = format_table(["x"], [[1e-9], [12345.6], [0.25]])
        assert "1.000e-09" in text
        assert "1.235e+04" in text
        assert "0.25" in text


class TestFormatSeries:
    def test_points_listed(self):
        text = format_series("Baseline", [(16, 10.0), (32, 6.0)], unit="s")
        assert "Baseline" in text
        assert "[s]" in text
        assert "16" in text and "10" in text


class TestSweepResultSet:
    def _sweep(self, planted):
        configs = [
            LouvainConfig(),
            LouvainConfig(variant=Variant.ET, alpha=0.75),
        ]
        return run_variant_sweep(
            planted, "planted", configs, [1, 2], machine=CORI_HASWELL
        )

    def test_all_cells_present(self, planted_blocks):
        s = self._sweep(planted_blocks)
        assert set(s.labels()) == {"Baseline", "ET(0.75)"}
        assert s.process_counts("Baseline") == [1, 2]

    def test_elapsed_series_positive(self, planted_blocks):
        s = self._sweep(planted_blocks)
        for _, t in s.elapsed_series("Baseline"):
            assert t > 0

    def test_best_speedup(self, planted_blocks):
        s = self._sweep(planted_blocks)
        speedup, label, p = s.best_speedup_over_baseline()
        assert speedup >= 1.0 or label == "Baseline"
        assert label in s.labels()
        assert p in (1, 2)

    def test_best_speedup_requires_baseline(self):
        s = SweepResultSet(graph_name="g")
        with pytest.raises(KeyError):
            s.best_speedup_over_baseline()

    def test_modularity_spread(self, planted_blocks):
        s = self._sweep(planted_blocks)
        lo, hi = s.modularity_spread()
        assert 0.7 < lo <= hi < 1.0


class TestScalingHelpers:
    def test_strong_scaling_curve(self, planted_blocks):
        curve = strong_scaling_curve(
            planted_blocks, LouvainConfig(), [1, 2, 4], machine=CORI_HASWELL
        )
        assert [p for p, _ in curve] == [1, 2, 4]
        assert all(t > 0 for _, t in curve)

    def test_speedup_table(self):
        rows = speedup_table([(1, 10.0), (2, 5.0), (4, 2.5)])
        assert rows[0][2] == pytest.approx(1.0)
        assert rows[1][2] == pytest.approx(2.0)
        assert rows[2][2] == pytest.approx(4.0)

    def test_speedup_table_empty(self):
        assert speedup_table([]) == []

    def test_paper_variants_all_runnable(self, two_cliques):
        s = run_variant_sweep(
            two_cliques, "cliques", list(PAPER_VARIANTS), [2],
            machine=CORI_HASWELL,
        )
        assert len(s.labels()) == len(PAPER_VARIANTS)
