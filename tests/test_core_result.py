"""Unit tests for result containers."""

import numpy as np

from repro.core import IterationStats, LouvainResult, PhaseStats, normalize_assignment


def make_result():
    iters = [
        IterationStats(0, 0, 0.1, 50, 1.0, 0.0),
        IterationStats(0, 1, 0.3, 20, 1.0, 0.0),
        IterationStats(1, 0, 0.4, 5, 0.8, 0.1),
    ]
    phases = [
        PhaseStats(0, 1e-6, 2, 0.3, 100, 400),
        PhaseStats(1, 1e-6, 1, 0.4, 10, 40),
    ]
    return LouvainResult(
        modularity=0.4,
        assignment=np.array([0, 0, 1, 1, 2]),
        phases=phases,
        iterations=iters,
        elapsed=1.5,
    )


class TestLouvainResult:
    def test_counts(self):
        r = make_result()
        assert r.num_phases == 2
        assert r.total_iterations == 3
        assert r.num_communities == 3

    def test_community_sizes(self):
        np.testing.assert_array_equal(
            make_result().community_sizes(), [2, 2, 1]
        )

    def test_modularity_by_iteration(self):
        series = make_result().modularity_by_iteration()
        assert series == [(0, 0.1), (1, 0.3), (2, 0.4)]

    def test_iterations_per_phase(self):
        assert make_result().iterations_per_phase() == [(0, 2), (1, 1)]

    def test_summary_readable(self):
        s = make_result().summary()
        assert "Q=0.4" in s
        assert "phases=2" in s

    def test_empty_assignment(self):
        r = LouvainResult(modularity=0.0, assignment=np.empty(0, np.int64))
        assert r.num_communities == 0


class TestNormalizeAssignment:
    def test_dense_renumbering(self):
        out = normalize_assignment(np.array([42, -3, 42, 100]))
        np.testing.assert_array_equal(out, [1, 0, 1, 2])

    def test_already_dense(self):
        out = normalize_assignment(np.array([0, 1, 1, 2]))
        np.testing.assert_array_equal(out, [0, 1, 1, 2])

    def test_preserves_grouping(self):
        raw = np.array([7, 7, 9, 9, 7])
        out = normalize_assignment(raw)
        assert out[0] == out[1] == out[4]
        assert out[2] == out[3]
        assert out[0] != out[2]

    def test_int64_output(self):
        assert normalize_assignment(np.array([5, 5])).dtype == np.int64
