"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.resultio import read_communities_text, load_result
from repro.graph import EdgeList, read_header
from repro.graph.textio import write_snap_edgelist


class TestGenerate:
    def test_writes_binary(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        assert main(["generate", "channel", out, "--scale", "tiny"]) == 0
        header = read_header(out)
        assert header.num_vertices > 0
        assert "stand-in for channel" in capsys.readouterr().out

    def test_unknown_dataset(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "nope", str(tmp_path / "g.bin")])

    def test_seed_changes_output(self, tmp_path):
        a, b = str(tmp_path / "a.bin"), str(tmp_path / "b.bin")
        main(["generate", "com-orkut", a, "--scale", "tiny", "--seed", "1"])
        main(["generate", "com-orkut", b, "--scale", "tiny", "--seed", "2"])
        assert open(a, "rb").read() != open(b, "rb").read()


class TestConvertInfo:
    def test_convert_and_info(self, tmp_path, capsys):
        src = tmp_path / "g.txt"
        el = EdgeList.from_arrays(4, [0, 1, 2], [1, 2, 3])
        write_snap_edgelist(src, el)
        dst = str(tmp_path / "g.bin")
        assert main(["convert", str(src), dst]) == 0
        assert main(["info", dst]) == 0
        out = capsys.readouterr().out
        assert "n=4" in out


class TestDetect:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from tests.conftest import planted_blocks_graph
        from repro.graph import write_edgelist

        g = planted_blocks_graph(
            blocks=4, per_block=10, p_in=0.8, inter_edges=6, seed=3
        )
        path = str(tmp_path / "g.bin")
        write_edgelist(path, EdgeList.from_csr(g))
        return path

    def test_detect_writes_outputs(self, tmp_path, capsys, graph_file):
        comm_file = str(tmp_path / "c.txt")
        npz_file = str(tmp_path / "r.npz")
        rc = main([
            "detect", graph_file, "--ranks", "2",
            "--variant", "etc", "--alpha", "0.25",
            "--out", comm_file, "--save", npz_file, "--trace",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ETC(0.25) on 2 ranks" in out
        assert "trace over 2 rank(s)" in out
        assignment = read_communities_text(comm_file)
        assert len(assignment) == 40
        result = load_result(npz_file)
        assert result.modularity > 0.5

    def test_detect_chrome_trace(self, tmp_path, graph_file, capsys):
        import json

        out = str(tmp_path / "timeline.json")
        rc = main([
            "detect", graph_file, "--ranks", "2", "--chrome-trace", out,
        ])
        assert rc == 0
        doc = json.load(open(out))
        assert doc["traceEvents"]
        assert "Perfetto" in capsys.readouterr().out

    def test_detect_with_coloring_and_resolution(self, graph_file, capsys):
        rc = main([
            "detect", graph_file, "--ranks", "2", "--coloring",
            "--resolution", "1.5",
        ])
        assert rc == 0
        assert "Baseline" in capsys.readouterr().out


class TestCheckpointCli:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from tests.conftest import planted_blocks_graph
        from repro.graph import write_edgelist

        g = planted_blocks_graph(
            blocks=4, per_block=10, p_in=0.8, inter_edges=6, seed=3
        )
        path = str(tmp_path / "g.bin")
        write_edgelist(path, EdgeList.from_csr(g))
        return path

    def test_detect_checkpoint_then_resume(self, tmp_path, capsys, graph_file):
        ck = str(tmp_path / "ck")
        rc = main([
            "detect", graph_file, "--ranks", "2", "--variant", "etc",
            "--checkpoint-dir", ck,
        ])
        assert rc == 0
        first = capsys.readouterr().out
        rc = main([
            "detect", graph_file, "--ranks", "2", "--variant", "etc",
            "--checkpoint-dir", ck, "--resume",
        ])
        assert rc == 0
        resumed = capsys.readouterr().out
        # same Q= summary line: the resumed run reproduces the original
        assert first.splitlines()[0] == resumed.splitlines()[0]

    def test_resume_requires_checkpoint_dir(self, graph_file, capsys):
        rc = main(["detect", graph_file, "--ranks", "2", "--resume"])
        assert rc == 1
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_ckpt_list_and_validate(self, tmp_path, capsys, graph_file):
        ck = str(tmp_path / "ck")
        main(["detect", graph_file, "--ranks", "2", "--checkpoint-dir", ck])
        capsys.readouterr()
        assert main(["ckpt", "list", ck]) == 0
        assert "phase checkpoint" in capsys.readouterr().out
        assert main(["ckpt", "validate", ck]) == 0
        assert "checkpoint(s) valid" in capsys.readouterr().out

    def test_ckpt_validate_detects_corruption(self, tmp_path, capsys,
                                              graph_file):
        from repro.resilience import corrupt_checkpoint_shard, scan_checkpoints

        ck = str(tmp_path / "ck")
        main(["detect", graph_file, "--ranks", "2", "--checkpoint-dir", ck])
        capsys.readouterr()
        for _name, manifest, _err in scan_checkpoints(ck):
            corrupt_checkpoint_shard(manifest.shard_path(0), seed=0)
        assert main(["ckpt", "validate", ck]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_ckpt_empty_directory(self, tmp_path, capsys):
        empty = str(tmp_path / "nothing")
        assert main(["ckpt", "list", empty]) == 0
        assert main(["ckpt", "validate", empty]) == 1
        assert "no checkpoints found" in capsys.readouterr().out


class TestCompare:
    def test_compare_scores(self, tmp_path, capsys):
        det = tmp_path / "d.txt"
        tru = tmp_path / "t.txt"
        det.write_text("0 0\n1 0\n2 1\n3 1\n")
        tru.write_text("0 0\n1 0\n2 1\n3 1\n")
        assert main(["compare", str(det), str(tru)]) == 0
        out = capsys.readouterr().out
        assert "F-score=1.000000" in out
        assert "NMI=1.000000" in out

    def test_compare_length_mismatch(self, tmp_path, capsys):
        det = tmp_path / "d.txt"
        tru = tmp_path / "t.txt"
        det.write_text("0 0\n")
        tru.write_text("0 0\n1 1\n")
        assert main(["compare", str(det), str(tru)]) == 1
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_variant_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["detect", "x.bin", "--variant", "magic"])


class TestServiceCli:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from tests.conftest import planted_blocks_graph
        from repro.graph import write_edgelist

        g = planted_blocks_graph(
            blocks=4, per_block=10, p_in=0.8, inter_edges=6, seed=3
        )
        path = str(tmp_path / "g.bin")
        write_edgelist(path, EdgeList.from_csr(g))
        return path

    def test_submit_basic(self, tmp_path, capsys, graph_file):
        npz = str(tmp_path / "r.npz")
        rc = main([
            "submit", graph_file, "--ranks", "2", "--seed", "1",
            "--save", npz,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert load_result(npz).num_communities > 0

    def test_submit_disk_cache_hit(self, tmp_path, capsys, graph_file):
        cache = str(tmp_path / "cache")
        argv = [
            "submit", graph_file, "--ranks", "2", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hit" not in first
        # A second process-level invocation is served from disk.
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_serve_jobs_file(self, tmp_path, capsys, graph_file):
        import json

        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"graph": graph_file, "ranks": 2, "tag": "a"},
            {"graph": graph_file, "ranks": 2, "repeat": 2,
             "config": {"seed": 1}, "priority": 5, "tag": "b"},
        ]))
        metrics_file = str(tmp_path / "m.json")
        rc = main([
            "serve", str(jobs), "--workers", "2",
            "--metrics", metrics_file,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("done") >= 3
        assert "service metrics" in out
        snapshot = json.loads(open(metrics_file).read())
        assert snapshot["counters"]["completed"] == 3

    def test_serve_bad_config_key(self, tmp_path, capsys, graph_file):
        import json

        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"graph": graph_file, "config": {"warp_speed": True}},
        ]))
        assert main(["serve", str(jobs)]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_serve_rejects_non_list(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text('{"graph": "x"}')
        assert main(["serve", str(jobs)]) == 2


class TestTuneCli:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from tests.conftest import planted_blocks_graph
        from repro.graph import write_edgelist

        g = planted_blocks_graph(
            blocks=4, per_block=10, p_in=0.8, inter_edges=6, seed=3
        )
        path = str(tmp_path / "g.bin")
        write_edgelist(path, EdgeList.from_csr(g))
        return path

    def test_tune_then_db_hit(self, tmp_path, capsys, graph_file):
        db = str(tmp_path / "tune.json")
        argv = [
            "tune", graph_file, "--db", db, "--trials", "3",
            "--max-ranks", "2",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "plan stored" in first
        assert "rung" in first
        # Second process-level invocation: pure DB hit, zero trials.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "database hit" in second
        assert "no trials run" in second

    def test_tune_json_report(self, tmp_path, capsys, graph_file):
        import json

        db = str(tmp_path / "tune.json")
        report = str(tmp_path / "report.json")
        rc = main([
            "tune", graph_file, "--db", db, "--trials", "3",
            "--max-ranks", "2", "--format", "json", "--report", report,
        ])
        assert rc == 0
        doc = json.loads(open(report).read())
        assert doc["cached"] is False
        assert doc["record"]["ranks"] >= 1
        assert doc["candidates_screened"] <= 3

    def test_tune_force_reruns(self, tmp_path, capsys, graph_file):
        db = str(tmp_path / "tune.json")
        base = ["tune", graph_file, "--db", db, "--trials", "3",
                "--max-ranks", "2"]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--force"]) == 0
        assert "plan stored" in capsys.readouterr().out

    def test_tune_unknown_machine(self, graph_file, capsys):
        rc = main(["tune", graph_file, "--machine", "cray-1"])
        assert rc == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_tune_bad_trials(self, graph_file, capsys):
        assert main(["tune", graph_file, "--trials", "0"]) == 2

    def test_submit_with_tune_db(self, tmp_path, capsys, graph_file):
        db = str(tmp_path / "tune.json")
        assert main([
            "tune", graph_file, "--db", db, "--trials", "3",
            "--max-ranks", "2",
        ]) == 0
        capsys.readouterr()
        rc = main(["submit", graph_file, "--tune-db", db])
        assert rc == 0
        assert "(tuned)" in capsys.readouterr().out


class TestMultiResolution:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from tests.conftest import planted_blocks_graph
        from repro.graph import write_edgelist

        g = planted_blocks_graph(
            blocks=4, per_block=10, p_in=0.8, inter_edges=6, seed=3
        )
        path = str(tmp_path / "g.bin")
        write_edgelist(path, EdgeList.from_csr(g))
        return path

    def test_sweep_prints_one_line_per_level(self, graph_file, capsys):
        rc = main([
            "detect", graph_file, "--ranks", "2",
            "--resolutions", "0.5,1.0,2.0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resolution 0.5:" in out
        assert "resolution 1:" in out
        assert "resolution 2:" in out

    def test_sweep_writes_leveled_outputs(self, tmp_path, graph_file, capsys):
        comm = str(tmp_path / "c.txt")
        npz = str(tmp_path / "r.npz")
        rc = main([
            "detect", graph_file, "--ranks", "2",
            "--resolutions", "0.5,2.0", "--out", comm, "--save", npz,
        ])
        assert rc == 0
        for suffix in ("r0.5", "r2"):
            labels = read_communities_text(
                str(tmp_path / f"c.{suffix}.txt")
            )
            assert len(labels) == 40
            assert load_result(
                str(tmp_path / f"r.{suffix}.npz")
            ).num_communities > 0

    def test_bad_levels_rejected(self, graph_file, capsys):
        assert main([
            "detect", graph_file, "--resolutions", "fast,1.0",
        ]) == 2
        assert "resolutions" in capsys.readouterr().err

    def test_sweep_refuses_resume(self, graph_file, capsys):
        rc = main([
            "detect", graph_file, "--resolutions", "1.0", "--resume",
            "--checkpoint-dir", "/tmp/nope",
        ])
        assert rc == 1
        assert "--resolutions" in capsys.readouterr().err

    def test_heuristic_flags_accepted(self, graph_file, capsys):
        rc = main([
            "detect", graph_file, "--ranks", "2",
            "--refine", "leiden", "--vertex-following",
        ])
        assert rc == 0
        assert "Baseline" in capsys.readouterr().out

    def test_submit_shares_config_flags(self, tmp_path, graph_file, capsys):
        rc = main([
            "submit", graph_file, "--ranks", "2",
            "--resolution", "2.0", "--refine", "leiden",
            "--vertex-following",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out
