"""Unit tests for point-to-point messaging and collective semantics."""

import numpy as np
import pytest

from repro.runtime import (
    CollectiveMismatchError,
    CommTimeoutError,
    FREE,
    InvalidRankError,
    RankFailedError,
    run_spmd,
)


def spmd(size, fn, **kw):
    kw.setdefault("machine", FREE)
    kw.setdefault("timeout", 10.0)
    return run_spmd(size, fn, **kw)


class TestPointToPoint:
    def test_ring_exchange(self):
        def prog(comm):
            comm.send(comm.rank * 10, (comm.rank + 1) % comm.size)
            return comm.recv((comm.rank - 1) % comm.size)

        r = spmd(4, prog)
        assert r.values == [30, 0, 10, 20]

    def test_fifo_ordering_per_source(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1)
                return None
            return [comm.recv(0) for _ in range(5)]

        r = spmd(2, prog)
        assert r.values[1] == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            # Receive in the opposite order of sending.
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        r = spmd(2, prog)
        assert r.values[1] == ("a", "b")

    def test_sendrecv(self):
        def prog(comm):
            other = 1 - comm.rank
            return comm.sendrecv(comm.rank, other, other)

        r = spmd(2, prog)
        assert r.values == [1, 0]

    def test_numpy_payload_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(10), 1)
                return None
            return comm.recv(0)

        r = spmd(2, prog)
        np.testing.assert_array_equal(r.values[1], np.arange(10))

    def test_invalid_destination(self):
        def prog(comm):
            comm.send(1, 99)

        with pytest.raises(RankFailedError) as ei:
            spmd(2, prog)
        assert isinstance(ei.value.causes[ei.value.rank], InvalidRankError)

    def test_recv_without_send_times_out(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(0)

        with pytest.raises(RankFailedError) as ei:
            spmd(2, prog, timeout=0.3)
        assert isinstance(ei.value.causes[1], CommTimeoutError)

    def test_self_send_recv(self):
        def prog(comm):
            comm.send("loop", comm.rank)
            return comm.recv(comm.rank)

        assert spmd(3, prog).values == ["loop"] * 3


class TestCollectives:
    def test_barrier_completes(self):
        def prog(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(spmd(5, prog).values)

    def test_bcast_from_each_root(self):
        def prog(comm):
            out = []
            for root in range(comm.size):
                value = f"from-{comm.rank}" if comm.rank == root else None
                out.append(comm.bcast(value, root=root))
            return out

        r = spmd(3, prog)
        for v in r.values:
            assert v == ["from-0", "from-1", "from-2"]

    def test_allreduce_sum_and_ops(self):
        def prog(comm):
            return (
                comm.allreduce(comm.rank + 1),
                comm.allreduce(comm.rank, op="max"),
                comm.allreduce(comm.rank, op="min"),
                comm.allreduce(comm.rank + 1, op="prod"),
            )

        r = spmd(4, prog)
        assert r.values == [(10, 3, 0, 24)] * 4

    def test_allreduce_numpy_elementwise(self):
        def prog(comm):
            return comm.allreduce(np.array([comm.rank, 1.0]))

        r = spmd(3, prog)
        for v in r.values:
            np.testing.assert_allclose(v, [3.0, 3.0])

    def test_allreduce_logical_ops(self):
        def prog(comm):
            return (
                comm.allreduce(comm.rank < 2, op="land"),
                comm.allreduce(comm.rank == 1, op="lor"),
            )

        assert spmd(3, prog).values == [(False, True)] * 3

    def test_allreduce_custom_callable(self):
        def prog(comm):
            return comm.allreduce((comm.rank,), op=lambda a, b: a + b)

        assert spmd(3, prog).values == [(0, 1, 2)] * 3

    def test_allreduce_unknown_op(self):
        def prog(comm):
            comm.allreduce(1, op="median")

        with pytest.raises(RankFailedError):
            spmd(2, prog)

    def test_reduce_only_root_gets_value(self):
        def prog(comm):
            return comm.reduce(comm.rank + 1, root=1)

        r = spmd(3, prog)
        assert r.values == [None, 6, None]

    def test_gather_scatter_roundtrip(self):
        def prog(comm):
            gathered = comm.gather(comm.rank ** 2, root=0)
            return comm.scatter(gathered, root=0)

        r = spmd(4, prog)
        assert r.values == [0, 1, 4, 9]

    def test_scatter_wrong_length_fails(self):
        def prog(comm):
            comm.scatter([1, 2, 3] if comm.rank == 0 else None, root=0)

        with pytest.raises(RankFailedError):
            spmd(2, prog)

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        r = spmd(3, prog)
        assert r.values == [["a", "b", "c"]] * 3

    def test_alltoall_transpose(self):
        def prog(comm):
            return comm.alltoall(
                [comm.rank * 10 + d for d in range(comm.size)]
            )

        r = spmd(3, prog)
        assert r.values[0] == [0, 10, 20]
        assert r.values[2] == [2, 12, 22]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            comm.alltoall([1])

        with pytest.raises(RankFailedError):
            spmd(3, prog)

    def test_neighbor_alltoall_sparse(self):
        def prog(comm):
            payload = {(comm.rank + 1) % comm.size: f"r{comm.rank}"}
            return comm.neighbor_alltoall(payload)

        r = spmd(4, prog)
        assert r.values[1] == {0: "r0"}
        assert r.values[0] == {3: "r3"}

    def test_neighbor_alltoall_empty(self):
        def prog(comm):
            return comm.neighbor_alltoall({})

        assert spmd(3, prog).values == [{}] * 3

    def test_scan_inclusive(self):
        def prog(comm):
            return comm.scan(comm.rank + 1)

        assert spmd(4, prog).values == [1, 3, 6, 10]

    def test_exscan_exclusive_with_identity(self):
        def prog(comm):
            return comm.exscan(comm.rank + 1)

        assert spmd(4, prog).values == [0, 1, 3, 6]

    def test_exscan_is_prefix_of_scan(self):
        def prog(comm):
            return comm.scan(2 * comm.rank), comm.exscan(2 * comm.rank)

        r = spmd(5, prog)
        for rank in range(1, 5):
            assert r.values[rank][1] == r.values[rank - 1][0]

    def test_collective_mismatch_detected(self):
        def prog(comm):
            # Divergence under test: the runtime must catch it.
            if comm.rank == 0:  # spmdlint: ignore[SPMD001]
                comm.barrier()
            else:
                comm.allreduce(1)

        with pytest.raises(RankFailedError) as ei:
            spmd(2, prog)
        assert any(
            isinstance(e, CollectiveMismatchError)
            for e in ei.value.causes.values()
        )

    def test_many_sequential_collectives(self):
        def prog(comm):
            total = 0
            for i in range(50):
                total += comm.allreduce(i)
            return total

        r = spmd(4, prog)
        assert r.values == [sum(4 * i for i in range(50))] * 4


class TestClockModel:
    def test_clocks_advance_with_traffic(self):
        def prog(comm):
            comm.allreduce(np.zeros(1000))
            return None

        from repro.runtime import CORI_HASWELL

        r = run_spmd(4, prog, machine=CORI_HASWELL, timeout=10.0)
        assert r.elapsed > 0.0

    def test_collective_synchronizes_clocks(self):
        from repro.runtime import CORI_HASWELL

        def prog(comm):
            if comm.rank == 0:
                comm.charge_compute(1e7)  # rank 0 is the straggler
            comm.barrier()
            return comm.clock

        r = run_spmd(3, prog, machine=CORI_HASWELL, timeout=10.0)
        assert max(r.values) - min(r.values) < 1e-12

    def test_compute_charge_categories(self):
        from repro.runtime import CORI_HASWELL

        def prog(comm):
            comm.charge_compute(1e6)
            comm.charge_io(1e6)
            return None

        r = run_spmd(1, prog, machine=CORI_HASWELL)
        cats = r.trace.seconds_by_category()
        assert cats["compute"] > 0
        assert cats["io"] > 0


class TestExchangeRoundtrip:
    def test_request_reply_delivery(self):
        """result[j] is rank j's reply to this rank's outgoing[j]."""

        def prog(comm):
            outgoing = [
                (comm.rank, dest) for dest in range(comm.size)
            ]

            def serve(incoming):
                # incoming[s] is rank s's request to me: (s, my_rank).
                for s, (src, dest) in enumerate(incoming):
                    assert src == s and dest == comm.rank
                return [(comm.rank, src) for src, _ in incoming]

            return comm.exchange_roundtrip(outgoing, serve)

        r = spmd(4, prog)
        for rank, replies in enumerate(r.values):
            assert replies == [(j, rank) for j in range(4)]

    def test_serve_runs_in_rank_order_and_mutates_by_reference(self):
        """Serve callbacks observe a global rank-ordered apply sequence
        — the property the owner-push delta protocol builds on."""

        def prog(comm):
            state = {"log": []}

            def serve(incoming):
                state["log"].append(list(incoming))
                return [sum(incoming)] * comm.size

            replies = comm.exchange_roundtrip(
                [comm.rank + 1] * comm.size, serve
            )
            return replies, state["log"]

        r = spmd(3, prog)
        for replies, log in r.values:
            # Every owner saw 1+2+3 and replied with it.
            assert replies == [6, 6, 6]
            assert log == [[1, 2, 3]]

    def test_single_rank(self):
        def prog(comm):
            return comm.exchange_roundtrip(
                [np.arange(3)], lambda inc: [inc[0] * 2]
            )[0].tolist()

        assert spmd(1, prog).values == [[0, 2, 4]]

    def test_sparse_mode_matches_dense_results(self):
        def prog(comm, sparse):
            out = [None] * comm.size
            out[(comm.rank + 1) % comm.size] = np.full(4, comm.rank)

            def serve(incoming):
                return [
                    None if v is None else v + 100 for v in incoming
                ]

            got = comm.exchange_roundtrip(out, serve, sparse=sparse)
            return [None if v is None else v.tolist() for v in got]

        dense = spmd(4, lambda c: prog(c, False))
        sparse = spmd(4, lambda c: prog(c, True))
        assert dense.values == sparse.values

    def test_wrong_outgoing_length(self):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.exchange_roundtrip([1], lambda inc: inc)
            comm.barrier()
            return True

        assert all(spmd(3, prog).values)

    def test_wrong_reply_length(self):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.exchange_roundtrip(
                    [0] * comm.size, lambda inc: [0]
                )
            return True

        with pytest.raises(RankFailedError):
            spmd(2, prog)

    def test_costed_as_two_legs(self):
        from repro.runtime import CORI_HASWELL

        def prog(comm):
            payload = np.zeros(1000, dtype=np.int64)
            comm.exchange_roundtrip(
                [payload] * comm.size,
                lambda inc: list(inc),
                category="community_comm",
            )
            return comm.clock

        r = run_spmd(4, prog, machine=CORI_HASWELL, timeout=10.0)
        assert all(v > 0 for v in r.values)
        counts = r.trace.collective_counts()
        assert counts.get("exchange_roundtrip") == 4
        assert r.trace.seconds_by_category()["community_comm"] > 0
