"""Unit tests for serial and distributed graph coarsening."""

import numpy as np
import pytest

from repro.core import coarsen_csr, modularity, remote_lookup
from repro.core.coarsen import rebuild_distributed
from repro.graph import CSRGraph, DistGraph
from repro.runtime import FREE, run_spmd

from .conftest import planted_blocks_graph


class TestCoarsenCSR:
    def test_two_cliques_collapse(self, two_cliques):
        assignment = np.array([0] * 5 + [5] * 5)
        meta, v2m = coarsen_csr(two_cliques, assignment)
        assert meta.num_vertices == 2
        np.testing.assert_array_equal(v2m, [0] * 5 + [1] * 5)
        # Self loops: 10 intra edges counted twice = 20 each.
        np.testing.assert_allclose(meta.self_loop_weights(), [20.0, 20.0])
        # Inter-community edge weight 1.
        nbrs, w = meta.neighbors(0)
        assert w[nbrs == 1][0] == pytest.approx(1.0)

    def test_total_weight_preserved(self, planted_blocks):
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, 10, planted_blocks.num_vertices)
        meta, _ = coarsen_csr(planted_blocks, assignment)
        assert meta.total_weight == pytest.approx(
            planted_blocks.total_weight
        )

    def test_modularity_invariant_under_coarsening(self, planted_blocks):
        # Q of the assignment on G equals Q of singletons on the coarse
        # graph — the property that makes multi-phase Louvain valid.
        rng = np.random.default_rng(1)
        assignment = rng.integers(0, 12, planted_blocks.num_vertices)
        meta, v2m = coarsen_csr(planted_blocks, assignment)
        q_fine = modularity(planted_blocks, assignment)
        q_coarse = modularity(meta, np.arange(meta.num_vertices))
        assert q_fine == pytest.approx(q_coarse, abs=1e-12)

    def test_identity_assignment(self, two_cliques):
        meta, v2m = coarsen_csr(two_cliques, np.arange(10))
        assert meta.num_vertices == 10
        assert meta.num_edges == two_cliques.num_edges

    def test_noncontiguous_labels(self, two_cliques):
        assignment = np.array([100] * 5 + [-3] * 5)
        meta, v2m = coarsen_csr(two_cliques, assignment)
        assert meta.num_vertices == 2
        # -3 sorts before 100, so the second clique becomes meta vertex 0.
        assert v2m[0] == 1 and v2m[5] == 0

    def test_length_check(self, two_cliques):
        with pytest.raises(ValueError):
            coarsen_csr(two_cliques, np.zeros(3))

    def test_existing_self_loops_accumulate(self):
        g = CSRGraph.from_edges(3, [0, 0, 1], [0, 1, 2], [2.0, 1.0, 1.0])
        meta, _ = coarsen_csr(g, np.array([0, 0, 0]))
        # loop(2.0 once) + edges (1+1) twice each = 2 + 4 = 6.
        assert meta.self_loop_weights()[0] == pytest.approx(6.0)
        assert meta.total_weight == pytest.approx(g.total_weight)


class TestRemoteLookup:
    def test_routes_to_owners(self):
        offsets = np.array([0, 4, 8, 12])

        def prog(comm):
            vb = offsets[comm.rank]
            ve = offsets[comm.rank + 1]
            table = (np.arange(vb, ve) * 100).astype(np.int64)
            queries = np.array([1, 5, 9, 5, 1], dtype=np.int64)
            return remote_lookup(
                comm, offsets, queries, lambda ids: table[ids - vb]
            ).tolist()

        r = run_spmd(3, prog, machine=FREE, timeout=10.0)
        assert r.values == [[100, 500, 900, 500, 100]] * 3

    def test_empty_queries(self):
        offsets = np.array([0, 2, 4])

        def prog(comm):
            vb = offsets[comm.rank]
            table = np.zeros(2, dtype=np.int64)
            out = remote_lookup(
                comm, offsets, np.empty(0, np.int64),
                lambda ids: table[ids - vb],
            )
            return len(out)

        assert run_spmd(2, prog, machine=FREE, timeout=10.0).values == [0, 0]


class TestRebuildDistributed:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4])
    def test_matches_serial_coarsening(self, nranks):
        g = planted_blocks_graph(blocks=4, per_block=10, seed=11)
        # A fixed, deterministic assignment: community = block leader.
        assignment = (np.arange(40) // 10) * 10

        def prog(comm):
            dg = DistGraph.distribute(comm, g, partition="even_vertex")
            plan = dg.build_ghost_plan(comm)
            local_comm = assignment[dg.vbegin:dg.vend].astype(np.int64)
            ghost_comm = assignment[plan.ghost_ids].astype(np.int64)
            new_dg, local_new = rebuild_distributed(
                comm, dg, local_comm, ghost_comm
            )
            return (
                new_dg.num_global_vertices,
                float(new_dg.weights.sum()),
                new_dg.total_weight,
                local_new.tolist(),
            )

        r = run_spmd(nranks, prog, machine=FREE, timeout=20.0)
        meta, v2m = coarsen_csr(g, assignment)
        for n_new, _, tw, _ in r.values:
            assert n_new == meta.num_vertices == 4
            assert tw == pytest.approx(g.total_weight)
        assert sum(v[1] for v in r.values) == pytest.approx(
            meta.total_weight
        )
        # local_new pieces concatenate to the serial vertex_to_meta map.
        combined = []
        for v in r.values:
            combined.extend(v[3])
        np.testing.assert_array_equal(combined, v2m)

    def test_stale_owned_communities_pruned(self):
        # Community ids owned by rank 0 that only remote vertices use:
        # every vertex joins community 0 (owned by rank 0).
        g = planted_blocks_graph(blocks=2, per_block=6, seed=2)
        assignment = np.zeros(12, dtype=np.int64)

        def prog(comm):
            dg = DistGraph.distribute(comm, g, partition="even_vertex")
            plan = dg.build_ghost_plan(comm)
            local_comm = assignment[dg.vbegin:dg.vend]
            ghost_comm = assignment[plan.ghost_ids]
            new_dg, local_new = rebuild_distributed(
                comm, dg, local_comm, ghost_comm
            )
            return new_dg.num_global_vertices, local_new.tolist()

        r = run_spmd(3, prog, machine=FREE, timeout=20.0)
        for n_new, local_new in r.values:
            assert n_new == 1
            assert all(x == 0 for x in local_new)

    def test_meta_graph_structure(self, two_cliques):
        def prog(comm):
            dg = DistGraph.distribute(comm, two_cliques, "even_vertex")
            plan = dg.build_ghost_plan(comm)
            assignment = np.array([0] * 5 + [5] * 5, dtype=np.int64)
            local_comm = assignment[dg.vbegin:dg.vend]
            ghost_comm = assignment[plan.ghost_ids]
            new_dg, _ = rebuild_distributed(comm, dg, local_comm, ghost_comm)
            out = []
            for lu in range(new_dg.num_local):
                nbrs, w = new_dg.row(lu)
                out.append(
                    (lu + new_dg.vbegin, sorted(zip(nbrs.tolist(), w.tolist())))
                )
            return out

        r = run_spmd(2, prog, machine=FREE, timeout=20.0)
        rows = dict(kv for v in r.values for kv in v)
        assert rows[0] == [(0, 20.0), (1, 1.0)]
        assert rows[1] == [(0, 1.0), (1, 20.0)]
