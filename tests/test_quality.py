"""Unit tests for quality metrics: F-score (paper §V-D) and NMI."""

import numpy as np
import pytest

from repro.quality import (
    best_match_scores,
    normalized_mutual_information,
)


class TestBestMatchScores:
    def test_perfect_match(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        s = best_match_scores(truth, truth)
        assert s.precision == 1.0
        assert s.recall == 1.0
        assert s.fscore == 1.0

    def test_relabeled_perfect_match(self):
        truth = np.array([0, 0, 1, 1])
        detected = np.array([7, 7, 3, 3])
        assert best_match_scores(truth, detected).fscore == 1.0

    def test_merged_communities_keep_recall_one(self):
        # Louvain merging two truth communities into one: recall stays
        # 1.0 and precision drops — the Table VII pattern.
        truth = np.array([0, 0, 1, 1])
        detected = np.array([0, 0, 0, 0])
        s = best_match_scores(truth, detected)
        assert s.recall == 1.0
        assert s.precision == pytest.approx(0.5)
        assert s.fscore == pytest.approx(2 * 0.5 / 1.5)

    def test_split_communities_drop_recall(self):
        truth = np.array([0, 0, 0, 0])
        detected = np.array([0, 0, 1, 1])
        s = best_match_scores(truth, detected)
        assert s.recall == pytest.approx(0.5)
        assert s.precision == 1.0

    def test_partial_overlap(self):
        truth = np.array([0, 0, 0, 1, 1, 1])
        detected = np.array([0, 0, 1, 1, 1, 1])
        s = best_match_scores(truth, detected)
        assert 0 < s.precision <= 1
        assert 0 < s.recall <= 1
        assert s.fscore == pytest.approx(
            2 * s.precision * s.recall / (s.precision + s.recall)
        )

    def test_empty(self):
        s = best_match_scores(np.empty(0), np.empty(0))
        assert s.fscore == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            best_match_scores(np.zeros(3), np.zeros(4))

    def test_format(self):
        s = best_match_scores(np.array([0, 1]), np.array([0, 1]))
        assert "F-score=1" in s.format()


class TestNMI:
    def test_identical_partitions(self):
        a = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_information(a, a) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 2, 2])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 3000)
        b = rng.integers(0, 5, 3000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_refinement_between_zero_and_one(self):
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2, 3, 3])  # refinement of a
        nmi = normalized_mutual_information(a, b)
        assert 0.3 < nmi < 1.0

    def test_single_cluster_degenerate(self):
        a = np.zeros(10)
        assert normalized_mutual_information(a, a) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 200)
        b = rng.integers(0, 3, 200)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.zeros(2), np.zeros(3))

    def test_empty(self):
        assert normalized_mutual_information(np.empty(0), np.empty(0)) == 1.0
