"""Unit tests for the SSCA#2 generator."""

import numpy as np
import pytest

from repro.core import louvain, modularity
from repro.generators import generate_ssca2, weak_scaling_series


class TestGenerateSSCA2:
    def test_covers_all_vertices(self):
        g = generate_ssca2(500, max_clique_size=20, seed=0)
        assert len(g.clique_of) == 500
        assert g.edges.num_vertices == 500

    def test_clique_sizes_bounded(self):
        g = generate_ssca2(500, max_clique_size=15, seed=1)
        sizes = np.bincount(g.clique_of)
        assert sizes.max() <= 15
        assert sizes.min() >= 1

    def test_cliques_fully_connected(self):
        g = generate_ssca2(120, max_clique_size=10,
                           inter_clique_fraction=0.0, seed=2)
        csr = g.edges.to_csr()
        sizes = np.bincount(g.clique_of)
        # With no inter edges, each vertex's degree is its clique size - 1.
        degs = csr.edge_counts()
        np.testing.assert_array_equal(degs, sizes[g.clique_of] - 1)

    def test_inter_fraction_controls_cut_edges(self):
        low = generate_ssca2(400, 15, inter_clique_fraction=0.005, seed=3)
        high = generate_ssca2(400, 15, inter_clique_fraction=0.2, seed=3)
        def cut(g):
            return int(
                (g.clique_of[g.edges.u] != g.clique_of[g.edges.v]).sum()
            )
        assert cut(low) < cut(high)

    def test_near_perfect_modularity_like_table5(self):
        # Table V reports modularity ~0.99998 for SSCA#2 inputs.
        g = generate_ssca2(600, 20, inter_clique_fraction=0.003, seed=4)
        q = modularity(g.edges.to_csr(), g.clique_of)
        assert q > 0.94

    def test_louvain_recovers_cliques(self):
        g = generate_ssca2(300, 15, inter_clique_fraction=0.002, seed=5)
        r = louvain(g.edges.to_csr())
        assert r.modularity > 0.94

    def test_deterministic(self):
        a = generate_ssca2(200, 10, seed=7)
        b = generate_ssca2(200, 10, seed=7)
        np.testing.assert_array_equal(a.edges.u, b.edges.u)
        np.testing.assert_array_equal(a.clique_of, b.clique_of)

    def test_single_vertex(self):
        g = generate_ssca2(1, max_clique_size=5)
        assert g.edges.num_edges == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ssca2(0)
        with pytest.raises(ValueError):
            generate_ssca2(10, max_clique_size=0)
        with pytest.raises(ValueError):
            generate_ssca2(10, inter_clique_fraction=-0.1)


class TestWeakScalingSeries:
    def test_sizes_proportional_to_processes(self):
        series = weak_scaling_series(100, [1, 2, 4], max_clique_size=10)
        assert [p for p, _ in series] == [1, 2, 4]
        assert [g.edges.num_vertices for _, g in series] == [100, 200, 400]

    def test_edges_scale_roughly_linearly(self):
        series = weak_scaling_series(200, [1, 4], max_clique_size=10)
        m1 = series[0][1].edges.num_edges
        m4 = series[1][1].edges.num_edges
        assert 2.5 < m4 / m1 < 6.0
