"""End-to-end tests for the multi-process serving tier.

These spawn real shard processes, so they share one module-scoped tier
where possible and keep graphs tiny.  The destructive drills (shard
death, drain cancellation) build their own fleets.
"""

import numpy as np
import pytest

from repro import make_graph
from repro.service import AdmissionError, execute_request
from repro.serving import (
    ChurnPolicy,
    NoLiveShards,
    ServingTier,
    ShardConfig,
    ShardDeadError,
    ShardProcess,
    ShardRouter,
    TenantQuota,
)

WAIT = 180.0


@pytest.fixture(scope="module")
def graphs():
    return {
        "channel": make_graph("channel", scale="tiny", seed=0),
        "orkut": make_graph("com-orkut", scale="tiny", seed=1),
        "friendster": make_graph("soc-friendster", scale="tiny", seed=2),
    }


@pytest.fixture(scope="module")
def tier(graphs):
    t = ServingTier(shards=2, workers_per_shard=2)
    t.create_tenant("alpha", nranks=2, churn=ChurnPolicy(absolute=3))
    t.create_tenant("beta", nranks=2)
    t.create_tenant("gamma", nranks=2)
    t.load_graph("alpha", graphs["channel"])
    t.load_graph("beta", graphs["orkut"])
    t.load_graph("gamma", graphs["friendster"])
    yield t
    t.shutdown()


class TestShardedDetection:
    def test_bit_identical_to_single_process(self, tier, graphs):
        """Unchanged tenants get bit-identical results from the 2-shard
        tier vs an inline single-process batch detection."""
        handles = {name: tier.detect(name) for name in ("beta", "gamma")}
        for name, handle in handles.items():
            response = tier.wait(handle, timeout=WAIT)
            assert response.state.value == "done"
            reference = execute_request(
                tier.registry.get(name).build_request(incremental=False)
            )
            np.testing.assert_array_equal(
                response.result.assignment, reference.assignment
            )
            assert response.result.modularity == reference.modularity

    def test_routing_is_sticky(self, tier):
        """Repeated submissions of one tenant's graph land on the same
        shard (fingerprint routing)."""
        first = tier.detect("beta")
        second = tier.detect("beta")
        assert first.shard_id == second.shard_id
        tier.wait(first, timeout=WAIT)
        tier.wait(second, timeout=WAIT)

    def test_streaming_triggers_incremental_exactly(self, tier):
        """Net churn of 3 (the policy's absolute threshold) fires the
        re-detection; 2 does not."""
        base = tier.detect("alpha")
        tier.wait(base, timeout=WAIT)
        assert tier.add_edges("alpha", [0, 1], [400, 401]) is None
        # Re-adding a pending edge changes raw churn, not net churn.
        assert tier.add_edges("alpha", [0], [400]) is None
        handle = tier.add_edges("alpha", [2], [402])
        assert handle is not None
        assert handle.kind == "churn"
        assert handle.net_churn == 3
        response = tier.wait(handle, timeout=WAIT)
        assert response.state.value == "done"
        assert response.request.mode == "incremental"
        # The window was consumed.
        assert tier.registry.get("alpha").accumulator.net_size == 0

    def test_flush_below_threshold(self, tier):
        assert tier.flush("beta") is None  # empty window
        assert tier.add_edges("beta", [0], [50]) is None
        handle = tier.flush("beta")
        assert handle is not None and handle.net_churn == 1
        response = tier.wait(handle, timeout=WAIT)
        assert response.state.value == "done"

    def test_zero_quota_tenant_rejected(self, tier, graphs):
        tier.create_tenant(
            "banned", quota=TenantQuota(max_queued=0), nranks=2
        )
        tier.load_graph("banned", graphs["channel"])
        with pytest.raises(AdmissionError) as exc:
            tier.detect("banned")
        assert exc.value.reason == "tenant-queue-full"

    def test_metrics_shape(self, tier):
        m = tier.metrics()
        assert set(m) == {"shards", "tenants", "serving_seconds"}
        assert m["tenants"]["alpha"]["counters"]["jobs_submitted"] >= 1
        assert any(s.get("alive") for s in m["shards"].values())


@pytest.mark.slow
class TestShardDeath:
    def test_reroute_after_kill(self, graphs):
        tier = ServingTier(shards=2, workers_per_shard=1)
        try:
            tier.create_tenant("t", nranks=2)
            tier.load_graph("t", graphs["channel"])
            first = tier.detect("t")
            tier.wait(first, timeout=WAIT)
            tier.kill_shard(first.shard_id)
            health = tier.health_check()
            assert health[first.shard_id] is False
            survivor = next(sid for sid, ok in health.items() if ok)
            # Resubmission re-homes onto the survivor and still works.
            second = tier.detect("t")
            assert second.shard_id == survivor
            response = tier.wait(second, timeout=WAIT)
            assert response.state.value == "done"
        finally:
            tier.shutdown()

    def test_all_dead_raises(self, graphs):
        tier = ServingTier(shards=1, workers_per_shard=1)
        try:
            tier.create_tenant("t", nranks=2)
            tier.load_graph("t", graphs["channel"])
            tier.kill_shard(0)
            with pytest.raises(NoLiveShards):
                tier.detect("t")
        finally:
            tier.shutdown()


@pytest.mark.slow
class TestDrain:
    def test_drain_cancels_queued_jobs(self, graphs):
        """A saturated shard drained with ``cancel_pending=True`` ends
        every job terminal: the running one done, queued ones
        cancelled."""
        tier = ServingTier(shards=1, workers_per_shard=1)
        try:
            tier.create_tenant("t", nranks=2, quota=TenantQuota(max_queued=8))
            tier.load_graph("t", graphs["orkut"])
            for _ in range(5):
                tier.detect("t")
            report = tier.drain(cancel_pending=True)
            states = [state for _, state in report[0]]
            assert all(s in ("done", "cancelled") for s in states)
            assert "cancelled" in states
        finally:
            tier.shutdown()

    def test_drain_without_cancel_completes_everything(self, graphs):
        tier = ServingTier(shards=1, workers_per_shard=1)
        try:
            tier.create_tenant("t", nranks=2)
            tier.load_graph("t", graphs["channel"])
            handles = [tier.detect("t") for _ in range(3)]
            report = tier.drain(cancel_pending=False)
            assert [state for _, state in report[0]] == ["done"] * 3
            for handle in handles:
                assert tier.poll(handle) == ("done", True)
        finally:
            tier.shutdown()


@pytest.mark.slow
class TestShardProcessUnit:
    def test_ping_and_dead_detection(self):
        shard = ShardProcess(ShardConfig(shard_id=0, workers=1))
        assert shard.ping()
        shard.kill()
        assert not shard.ping()
        with pytest.raises(ShardDeadError):
            shard.call("ping")

    def test_router_validation(self):
        with pytest.raises(ValueError):
            ShardRouter([])
        with pytest.raises(ValueError):
            ShardRouter(
                [ShardConfig(shard_id=0), ShardConfig(shard_id=0)]
            )

    def test_rendezvous_moves_only_dead_keys(self):
        tier = ServingTier(shards=3, workers_per_shard=1)
        try:
            keys = [f"key-{i}" for i in range(30)]
            before = tier.router.placement(keys)
            victim = tier.router.shards[1]
            victim.kill()
            tier.health_check()
            after = tier.router.placement(keys)
            for key in keys:
                if before[key] != 1:
                    assert after[key] == before[key]
                else:
                    assert after[key] != 1
        finally:
            tier.shutdown()
