"""Unit tests for tenants: quotas, churn policy, trigger exactness."""

import numpy as np
import pytest

from repro.core import LouvainConfig
from repro.generators import make_graph
from repro.serving import (
    ChurnPolicy,
    QuotaExceeded,
    Tenant,
    TenantError,
    TenantQuota,
    TenantRegistry,
    UnknownTenant,
)


@pytest.fixture(scope="module")
def channel():
    return make_graph("channel", scale="tiny", seed=0)


def _absent_pairs(g, count):
    """``count`` vertex pairs that are not edges of ``g``."""
    u_arr, v_arr, _ = g.edge_array()
    present = set(zip(u_arr.tolist(), v_arr.tolist()))
    u_out, v_out = [], []
    for u in range(g.num_vertices):
        v = (u + g.num_vertices // 2) % g.num_vertices
        a, b = min(u, v), max(u, v)
        if a != b and (a, b) not in present and (b, a) not in present:
            u_out.append(a)
            v_out.append(b)
            present.add((a, b))
        if len(u_out) == count:
            return u_out, v_out
    raise AssertionError("could not find absent pairs")


class TestTenantQuota:
    def test_defaults(self):
        q = TenantQuota()
        assert q.max_queued == 8 and q.max_ranks == 8
        assert q.edge_budget is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queued": -1},
            {"max_ranks": 0},
            {"edge_budget": -5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestChurnPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnPolicy(absolute=0)
        with pytest.raises(ValueError):
            ChurnPolicy(fraction=0.0)
        with pytest.raises(ValueError):
            ChurnPolicy(fraction=1.5)

    def test_absolute_fires_exactly_at_threshold(self):
        p = ChurnPolicy(absolute=5)
        assert not p.should_trigger(4, 1000)
        assert p.should_trigger(5, 1000)
        assert p.should_trigger(6, 1000)

    def test_fraction_of_m(self):
        p = ChurnPolicy(fraction=0.1)
        assert not p.should_trigger(9, 100)
        assert p.should_trigger(10, 100)

    def test_either_bound_fires(self):
        p = ChurnPolicy(absolute=100, fraction=0.5)
        assert p.should_trigger(100, 10_000)  # absolute
        assert p.should_trigger(6, 10)  # fraction
        assert not p.should_trigger(5, 10_000)

    def test_unconfigured_never_fires(self):
        p = ChurnPolicy()
        assert not p.should_trigger(10**9, 10)

    def test_zero_churn_never_fires(self):
        assert not ChurnPolicy(absolute=1).should_trigger(0, 100)


class TestTenant:
    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Tenant("")
        with pytest.raises(ValueError):
            Tenant("a/b")

    def test_requires_graph(self):
        t = Tenant("t")
        with pytest.raises(TenantError):
            t.build_request()
        with pytest.raises(TenantError):
            t.record_add_edges([0], [1])

    def test_edge_budget_on_load(self, channel):
        t = Tenant("t", quota=TenantQuota(edge_budget=channel.num_edges - 1))
        with pytest.raises(QuotaExceeded) as exc:
            t.load_graph(channel)
        assert exc.value.limit == "edge_budget"

    def test_edge_budget_on_stream(self, channel):
        t = Tenant(
            "t", quota=TenantQuota(edge_budget=channel.num_edges + 2)
        )
        t.load_graph(channel)
        t.record_add_edges([0, 1], [3, 4])
        with pytest.raises(QuotaExceeded):
            t.record_add_edges([2], [5])

    def test_trigger_fires_on_net_not_raw(self, channel):
        t = Tenant("t", churn=ChurnPolicy(absolute=3))
        t.load_graph(channel)
        # Two distinct edges, one of them streamed twice: raw 3, net 2.
        assert not t.record_add_edges([0, 1], [3, 4])
        assert not t.record_add_edges([0], [3])
        assert t.accumulator.raw_size == 3
        assert t.accumulator.net_size == 2
        # Third *distinct* edge crosses the threshold exactly.
        assert t.record_add_edges([2], [5])

    def test_add_then_remove_does_not_trigger(self, channel):
        t = Tenant("t", churn=ChurnPolicy(absolute=2))
        t.load_graph(channel)
        assert not t.record_add_edges([0], [3])
        # Removing the just-streamed edge leaves net churn at 1 (the
        # deletion key) — still below threshold.
        assert not t.record_remove_edges([0], [3])
        assert t.accumulator.net_size == 1

    def test_take_churn_applies_and_resets(self, channel):
        t = Tenant("t")
        t.load_graph(channel)
        m = channel.num_edges
        u, v = _absent_pairs(channel, 2)
        t.record_add_edges(u, v)
        churn = t.take_churn()
        assert churn.num_insertions == 2
        assert t.graph.num_edges == m + 2
        assert t.accumulator.net_size == 0
        assert t.counters["churn_batches_applied"] == 1

    def test_build_request_clamps_ranks(self, channel):
        t = Tenant("t", nranks=16, quota=TenantQuota(max_ranks=4))
        t.load_graph(channel)
        req = t.build_request()
        assert req.nranks == 4
        assert req.tenant == "t"
        assert req.mode == "batch"
        assert req.tag == "t/batch"

    def test_build_request_warm_starts_after_absorb(self, channel):
        t = Tenant("t")
        t.load_graph(channel)
        t.absorb(np.zeros(channel.num_vertices, dtype=np.int64), 0.5)
        req = t.build_request()
        assert req.mode == "incremental"
        assert req.previous_assignment is not None
        assert req.tag == "t/incremental"

    def test_incremental_without_assignment_rejected(self, channel):
        t = Tenant("t")
        t.load_graph(channel)
        with pytest.raises(TenantError):
            t.build_request(incremental=True)

    def test_reload_resets_solution(self, channel):
        t = Tenant("t")
        t.load_graph(channel)
        t.absorb(np.zeros(channel.num_vertices, dtype=np.int64), 0.5)
        t.record_add_edges([0], [3])
        t.load_graph(channel)
        assert t.assignment is None and t.modularity is None
        assert t.accumulator.net_size == 0

    def test_negative_vertex_ids_rejected(self, channel):
        t = Tenant("t")
        t.load_graph(channel)
        with pytest.raises(ValueError):
            t.record_add_edges([-1], [2])

    def test_describe(self, channel):
        t = Tenant("t")
        assert "no graph" in t.describe()
        t.load_graph(channel)
        assert f"{channel.num_edges}e" in t.describe()


class TestTenantRegistry:
    def test_create_get_remove(self):
        reg = TenantRegistry()
        t = reg.create("a", config=LouvainConfig(), nranks=2)
        assert reg.get("a") is t
        assert "a" in reg and len(reg) == 1
        assert reg.names() == ["a"]
        assert reg.remove("a") is t
        assert "a" not in reg

    def test_duplicate_rejected(self):
        reg = TenantRegistry()
        reg.create("a")
        with pytest.raises(TenantError):
            reg.create("a")

    def test_unknown_tenant(self):
        reg = TenantRegistry()
        with pytest.raises(UnknownTenant):
            reg.get("ghost")
        with pytest.raises(UnknownTenant):
            reg.remove("ghost")

    def test_iteration_sorted_names(self):
        reg = TenantRegistry()
        for name in ("c", "a", "b"):
            reg.create(name)
        assert reg.names() == ["a", "b", "c"]
        assert {t.name for t in reg} == {"a", "b", "c"}
