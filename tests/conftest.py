"""Shared fixtures: canonical small graphs and partition validators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, EdgeList

#: Zachary's karate club (34 vertices, 78 edges) — the classic community
#: detection testbed.  Louvain finds Q ≈ 0.41-0.42 with ~4 communities.
KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
    (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21),
    (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28),
    (2, 32), (3, 7), (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10),
    (5, 16), (6, 16), (8, 30), (8, 32), (8, 33), (9, 33), (13, 33),
    (14, 32), (14, 33), (15, 32), (15, 33), (18, 32), (18, 33), (19, 33),
    (20, 32), (20, 33), (22, 32), (22, 33), (23, 25), (23, 27), (23, 29),
    (23, 32), (23, 33), (24, 25), (24, 27), (24, 31), (25, 31), (26, 29),
    (26, 33), (27, 33), (28, 31), (28, 33), (29, 32), (29, 33), (30, 32),
    (30, 33), (31, 32), (31, 33), (32, 33),
]


def two_cliques_graph(clique_size: int = 5) -> CSRGraph:
    """Two ``clique_size``-cliques joined by one edge; the optimal
    partition is obviously one community per clique."""
    edges = []
    for base in (0, clique_size):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    edges.append((0, clique_size))
    u, v = zip(*edges)
    return EdgeList.from_arrays(
        2 * clique_size, np.array(u), np.array(v)
    ).to_csr()


def planted_blocks_graph(
    blocks: int = 8,
    per_block: int = 25,
    p_in: float = 0.4,
    inter_edges: int = 60,
    seed: int = 1,
) -> CSRGraph:
    """Random planted-partition graph with strong block communities."""
    rng = np.random.default_rng(seed)
    uu, vv = [], []
    for b in range(blocks):
        base = b * per_block
        for i in range(per_block):
            for j in range(i + 1, per_block):
                if rng.random() < p_in:
                    uu.append(base + i)
                    vv.append(base + j)
    added = 0
    while added < inter_edges:
        a, c = rng.integers(0, blocks, 2)
        if a == c:
            continue
        uu.append(int(a) * per_block + int(rng.integers(per_block)))
        vv.append(int(c) * per_block + int(rng.integers(per_block)))
        added += 1
    return EdgeList.from_arrays(
        blocks * per_block, np.array(uu), np.array(vv)
    ).to_csr()


@pytest.fixture(scope="session")
def karate() -> CSRGraph:
    u, v = zip(*KARATE_EDGES)
    return EdgeList.from_arrays(34, np.array(u), np.array(v)).to_csr()


@pytest.fixture(scope="session")
def two_cliques() -> CSRGraph:
    return two_cliques_graph()


@pytest.fixture(scope="session")
def planted_blocks() -> CSRGraph:
    return planted_blocks_graph()


@pytest.fixture(scope="session")
def path_graph() -> CSRGraph:
    n = 12
    return EdgeList.from_arrays(
        n, np.arange(n - 1), np.arange(1, n)
    ).to_csr()


@pytest.fixture(scope="session")
def star_graph() -> CSRGraph:
    n = 9
    return EdgeList.from_arrays(
        n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n)
    ).to_csr()


def assert_valid_partition(assignment: np.ndarray, num_vertices: int) -> None:
    """Assignment covers every vertex with dense community ids."""
    assert len(assignment) == num_vertices
    assert assignment.min() >= 0
    labels = np.unique(assignment)
    assert labels[0] == 0
    assert labels[-1] == len(labels) - 1, "community ids must be dense"


def random_graph(
    rng: np.random.Generator, n: int, m: int, weighted: bool = False
) -> CSRGraph:
    """Random multigraph (possibly with loops) for property tests."""
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    w = rng.uniform(0.5, 2.0, m) if weighted else None
    return EdgeList.from_arrays(n, u, v, w).to_csr()
