"""Unit tests for message payload size estimation."""

import numpy as np

from repro.runtime.payload import ENVELOPE_BYTES, SCALAR_BYTES, message_bytes, nbytes


class TestNbytes:
    def test_none_is_free(self):
        assert nbytes(None) == 0

    def test_scalars(self):
        assert nbytes(5) == SCALAR_BYTES
        assert nbytes(3.14) == SCALAR_BYTES
        assert nbytes(True) == SCALAR_BYTES
        assert nbytes(np.int64(7)) == SCALAR_BYTES
        assert nbytes(np.float64(7.5)) == SCALAR_BYTES

    def test_numpy_array_exact(self):
        a = np.zeros(100, dtype=np.int64)
        assert nbytes(a) == 800
        assert nbytes(np.zeros((3, 4), dtype=np.float32)) == 48

    def test_structured_array_counts_packed_bytes(self):
        # The community-info wire format: 24 bytes per record.
        dt = np.dtype([("id", "<i8"), ("tot", "<f8"), ("size", "<i8")])
        assert nbytes(np.zeros(10, dtype=dt)) == 240
        assert nbytes(np.zeros(0, dtype=dt)) == 0

    def test_structured_scalar_record(self):
        dt = np.dtype([("id", "<i8"), ("tot", "<f8")])
        rec = np.zeros(3, dtype=dt)[0]  # np.void scalar
        assert nbytes(rec) == 16

    def test_list_of_ints(self):
        assert nbytes([1, 2, 3, 4]) == 4 * SCALAR_BYTES

    def test_nested_structures(self):
        payload = ([1, 2], (3.0,), {4: 5})
        assert nbytes(payload) == 5 * SCALAR_BYTES

    def test_dict_counts_keys_and_values(self):
        assert nbytes({1: 2.0}) == 2 * SCALAR_BYTES

    def test_bytes_and_str(self):
        assert nbytes(b"abcd") == 4
        assert nbytes("hëllo") == len("hëllo".encode())

    def test_set(self):
        assert nbytes({1, 2, 3}) == 3 * SCALAR_BYTES

    def test_object_with_dict_falls_back_to_attributes(self):
        class Msg:
            def __init__(self):
                self.a = np.zeros(10, dtype=np.float64)
                self.b = 1

        assert nbytes(Msg()) == 80 + SCALAR_BYTES

    def test_unknown_object_is_charged_not_free(self):
        assert nbytes(object()) > 0


class TestMessageBytes:
    def test_envelope_added(self):
        assert message_bytes(None) == ENVELOPE_BYTES
        assert message_bytes([1]) == ENVELOPE_BYTES + SCALAR_BYTES

    def test_monotone_in_payload(self):
        assert message_bytes(list(range(100))) > message_bytes(list(range(10)))
