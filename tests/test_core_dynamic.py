"""Unit tests for dynamic (incremental) community detection."""

import numpy as np
import pytest

from repro.core import modularity, run_louvain
from repro.core.dynamic import (
    ChurnAccumulator,
    ChurnStats,
    EdgeChurn,
    apply_churn,
    churn_statistics,
    incremental_louvain,
)
from repro.runtime import FREE

from .conftest import assert_valid_partition


class TestEdgeChurn:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeChurn(add_u=np.array([1]), add_v=np.array([2]),
                      add_w=np.empty(0))
        with pytest.raises(ValueError):
            EdgeChurn(del_u=np.array([1]), del_v=np.empty(0, np.int64))

    def test_touched_vertices(self):
        churn = EdgeChurn(
            add_u=np.array([1]), add_v=np.array([5]),
            add_w=np.ones(1),
            del_u=np.array([2]), del_v=np.array([1]),
        )
        np.testing.assert_array_equal(churn.touched_vertices(), [1, 2, 5])

    def test_random_churn_shapes(self, planted_blocks):
        churn = EdgeChurn.random(planted_blocks, 0.02, 0.02, seed=1)
        m = planted_blocks.num_edges
        assert churn.num_deletions == int(0.02 * m)
        assert 0 < churn.num_insertions <= int(0.02 * m)

    def test_random_churn_deterministic(self, planted_blocks):
        a = EdgeChurn.random(planted_blocks, 0.05, 0.05, seed=7)
        b = EdgeChurn.random(planted_blocks, 0.05, 0.05, seed=7)
        np.testing.assert_array_equal(a.del_u, b.del_u)
        np.testing.assert_array_equal(a.add_u, b.add_u)


class TestApplyChurn:
    def test_insert_new_edge(self, two_cliques):
        churn = EdgeChurn(
            add_u=np.array([0]), add_v=np.array([9]),
            add_w=np.array([2.0]),
        )
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges + 1
        nbrs, w = g2.neighbors(0)
        assert 9 in nbrs

    def test_insert_accumulates_on_existing(self, two_cliques):
        churn = EdgeChurn(
            add_u=np.array([0]), add_v=np.array([1]),
            add_w=np.array([3.0]),
        )
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges
        nbrs, w = g2.neighbors(0)
        assert w[nbrs == 1][0] == pytest.approx(4.0)

    def test_delete_edge(self, two_cliques):
        churn = EdgeChurn(del_u=np.array([5]), del_v=np.array([0]))
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges - 1
        nbrs, _ = g2.neighbors(0)
        assert 5 not in nbrs

    def test_delete_missing_edge_ignored(self, two_cliques):
        churn = EdgeChurn(del_u=np.array([0]), del_v=np.array([9]))
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges

    def test_insertion_can_grow_vertex_set(self, two_cliques):
        churn = EdgeChurn(
            add_u=np.array([0]), add_v=np.array([15]),
            add_w=np.ones(1),
        )
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_vertices == 16

    def test_empty_churn_identity(self, two_cliques):
        g2 = apply_churn(two_cliques, EdgeChurn())
        assert g2.num_edges == two_cliques.num_edges
        assert g2.total_weight == pytest.approx(two_cliques.total_weight)


class TestIncrementalLouvain:
    def test_stable_graph_keeps_partition(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        redo = incremental_louvain(
            planted_blocks, base.assignment, nranks=4, machine=FREE
        )
        # Nothing changed: the old partition is already converged, so
        # quality matches and the run is a couple of iterations.
        assert redo.modularity == pytest.approx(base.modularity, abs=0.01)
        assert redo.total_iterations <= 4

    def test_quality_after_small_churn(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        churn = EdgeChurn.random(planted_blocks, 0.02, 0.02, seed=3)
        g2 = apply_churn(planted_blocks, churn)
        inc = incremental_louvain(
            g2, base.assignment, nranks=4, machine=FREE,
            reset_touched=churn.touched_vertices(),
        )
        scratch = run_louvain(g2, 4, machine=FREE)
        assert_valid_partition(inc.assignment, g2.num_vertices)
        assert inc.modularity >= scratch.modularity - 0.02
        assert inc.modularity == pytest.approx(
            modularity(g2, inc.assignment), abs=1e-9
        )

    def test_fewer_iterations_than_scratch(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        churn = EdgeChurn.random(planted_blocks, 0.01, 0.01, seed=5)
        g2 = apply_churn(planted_blocks, churn)
        inc = incremental_louvain(
            g2, base.assignment, nranks=4, machine=FREE
        )
        scratch = run_louvain(g2, 4, machine=FREE)
        assert inc.total_iterations < scratch.total_iterations

    def test_new_vertices_become_singleton_seeds(self, two_cliques):
        base = run_louvain(two_cliques, 2, machine=FREE)
        # Attach two new vertices to clique 0.
        churn = EdgeChurn(
            add_u=np.array([0, 1]), add_v=np.array([10, 11]),
            add_w=np.ones(2),
        )
        g2 = apply_churn(two_cliques, churn)
        inc = incremental_louvain(g2, base.assignment, nranks=2,
                                  machine=FREE)
        assert len(inc.assignment) == 12
        # The new leaves join clique 0's community.
        assert inc.assignment[10] == inc.assignment[0]
        assert inc.assignment[11] == inc.assignment[1]

    def test_assignment_longer_than_graph_rejected(self, two_cliques):
        with pytest.raises(ValueError):
            incremental_louvain(
                two_cliques, np.zeros(99, dtype=np.int64), nranks=2,
                machine=FREE,
            )

    def test_arbitrary_labels_accepted(self, planted_blocks):
        labels = (np.arange(200) // 25) * 1000 - 7  # weird label space
        r = incremental_louvain(
            planted_blocks, labels, nranks=4, machine=FREE
        )
        assert r.modularity > 0.75


class TestChurnStatistics:
    def test_classification(self):
        prev = np.array([0, 0, 1, 1])
        churn = EdgeChurn(
            add_u=np.array([0, 0]), add_v=np.array([1, 2]),
            add_w=np.ones(2),
            del_u=np.array([2]), del_v=np.array([3]),
        )
        stats = churn_statistics(churn, prev)
        assert isinstance(stats, ChurnStats)
        assert stats.inter_inserted == 1  # 0-2 crosses communities
        assert stats.intra_deleted == 1  # 2-3 was intra
        assert stats.touched_vertices == 4

    def test_empty_previous(self):
        stats = churn_statistics(EdgeChurn(), np.empty(0, np.int64))
        assert stats.touched_fraction == 0.0


class TestChurnAccumulator:
    def test_empty(self):
        acc = ChurnAccumulator()
        assert not acc
        assert acc.net_size == 0 and acc.raw_size == 0
        batch = acc.batch()
        assert batch.num_insertions == 0 and batch.num_deletions == 0

    def test_repeated_add_counts_once(self):
        acc = ChurnAccumulator()
        acc.add(0, 1)
        acc.add(1, 0)  # same undirected edge, reversed
        acc.add(0, 1, w=2.0)
        assert acc.raw_size == 3
        assert acc.net_size == 1
        batch = acc.batch()
        assert batch.num_insertions == 1
        assert batch.add_w[0] == pytest.approx(4.0)  # weights accumulate

    def test_add_then_remove_nets_to_deletion(self):
        acc = ChurnAccumulator()
        acc.add(2, 3)
        acc.remove(3, 2)
        assert acc.net_size == 1
        batch = acc.batch()
        assert batch.num_insertions == 0
        assert batch.num_deletions == 1

    def test_remove_then_add_keeps_both(self):
        # Delete-then-insert is *replace*: apply_churn applies the
        # deletion first, so both operations must survive the window.
        acc = ChurnAccumulator()
        acc.remove(2, 3)
        acc.add(2, 3, w=5.0)
        assert acc.net_size == 1
        batch = acc.batch()
        assert batch.num_insertions == 1 and batch.num_deletions == 1

    def test_net_size_counts_distinct_keys(self):
        acc = ChurnAccumulator()
        acc.add_edges([0, 0, 1], [1, 1, 2])
        acc.remove_edges([5], [6])
        assert acc.raw_size == 4
        assert acc.net_size == 3  # (0,1), (1,2), (5,6)
        assert len(acc) == 3

    def test_batch_deterministic_order(self):
        a, b = ChurnAccumulator(), ChurnAccumulator()
        a.add_edges([3, 1, 2], [4, 2, 3])
        b.add_edges([2, 3, 1], [3, 4, 2])
        np.testing.assert_array_equal(a.batch().add_u, b.batch().add_u)
        np.testing.assert_array_equal(a.batch().add_v, b.batch().add_v)

    def test_take_clears(self):
        acc = ChurnAccumulator()
        acc.add(0, 1)
        batch = acc.take()
        assert batch.num_insertions == 1
        assert not acc
        assert acc.raw_size == 0

    def test_replay_equivalence(self, two_cliques):
        """Applying the accumulated net batch matches replaying the
        same operations one by one through apply_churn."""
        ops = [
            ("add", 0, 10, 1.0),
            ("add", 10, 0, 2.0),   # duplicate of the edge above
            ("add", 1, 6, 1.0),
            ("remove", 1, 6, None),   # cancels the pending insert
            ("remove", 0, 1, None),   # deletes a base-graph edge
            ("add", 0, 1, 7.0),       # ... then re-inserts it (replace)
        ]
        acc = ChurnAccumulator()
        replayed = two_cliques
        for op, u, v, w in ops:
            if op == "add":
                acc.add(u, v, w)
                replayed = apply_churn(
                    replayed,
                    EdgeChurn(
                        add_u=np.array([u]), add_v=np.array([v]),
                        add_w=np.array([float(w)]),
                    ),
                )
            else:
                acc.remove(u, v)
                replayed = apply_churn(
                    replayed,
                    EdgeChurn(
                        del_u=np.array([u]), del_v=np.array([v]),
                    ),
                )
        batched = apply_churn(two_cliques, acc.batch())
        assert batched.num_edges == replayed.num_edges
        np.testing.assert_array_equal(batched.index, replayed.index)
        np.testing.assert_array_equal(batched.edges, replayed.edges)
        np.testing.assert_allclose(batched.weights, replayed.weights)

    def test_threshold_scenario_net_vs_raw(self):
        """The satellite fix: thresholds fire on *net* churn, so an
        add/remove ping-pong of one edge cannot trigger re-detection."""
        acc = ChurnAccumulator()
        for _ in range(50):
            acc.add(0, 1)
            acc.remove(0, 1)
        assert acc.raw_size == 100
        assert acc.net_size == 1
