"""Unit tests for dynamic (incremental) community detection."""

import numpy as np
import pytest

from repro.core import modularity, run_louvain
from repro.core.dynamic import (
    ChurnStats,
    EdgeChurn,
    apply_churn,
    churn_statistics,
    incremental_louvain,
)
from repro.runtime import FREE

from .conftest import assert_valid_partition


class TestEdgeChurn:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeChurn(add_u=np.array([1]), add_v=np.array([2]),
                      add_w=np.empty(0))
        with pytest.raises(ValueError):
            EdgeChurn(del_u=np.array([1]), del_v=np.empty(0, np.int64))

    def test_touched_vertices(self):
        churn = EdgeChurn(
            add_u=np.array([1]), add_v=np.array([5]),
            add_w=np.ones(1),
            del_u=np.array([2]), del_v=np.array([1]),
        )
        np.testing.assert_array_equal(churn.touched_vertices(), [1, 2, 5])

    def test_random_churn_shapes(self, planted_blocks):
        churn = EdgeChurn.random(planted_blocks, 0.02, 0.02, seed=1)
        m = planted_blocks.num_edges
        assert churn.num_deletions == int(0.02 * m)
        assert 0 < churn.num_insertions <= int(0.02 * m)

    def test_random_churn_deterministic(self, planted_blocks):
        a = EdgeChurn.random(planted_blocks, 0.05, 0.05, seed=7)
        b = EdgeChurn.random(planted_blocks, 0.05, 0.05, seed=7)
        np.testing.assert_array_equal(a.del_u, b.del_u)
        np.testing.assert_array_equal(a.add_u, b.add_u)


class TestApplyChurn:
    def test_insert_new_edge(self, two_cliques):
        churn = EdgeChurn(
            add_u=np.array([0]), add_v=np.array([9]),
            add_w=np.array([2.0]),
        )
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges + 1
        nbrs, w = g2.neighbors(0)
        assert 9 in nbrs

    def test_insert_accumulates_on_existing(self, two_cliques):
        churn = EdgeChurn(
            add_u=np.array([0]), add_v=np.array([1]),
            add_w=np.array([3.0]),
        )
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges
        nbrs, w = g2.neighbors(0)
        assert w[nbrs == 1][0] == pytest.approx(4.0)

    def test_delete_edge(self, two_cliques):
        churn = EdgeChurn(del_u=np.array([5]), del_v=np.array([0]))
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges - 1
        nbrs, _ = g2.neighbors(0)
        assert 5 not in nbrs

    def test_delete_missing_edge_ignored(self, two_cliques):
        churn = EdgeChurn(del_u=np.array([0]), del_v=np.array([9]))
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_edges == two_cliques.num_edges

    def test_insertion_can_grow_vertex_set(self, two_cliques):
        churn = EdgeChurn(
            add_u=np.array([0]), add_v=np.array([15]),
            add_w=np.ones(1),
        )
        g2 = apply_churn(two_cliques, churn)
        assert g2.num_vertices == 16

    def test_empty_churn_identity(self, two_cliques):
        g2 = apply_churn(two_cliques, EdgeChurn())
        assert g2.num_edges == two_cliques.num_edges
        assert g2.total_weight == pytest.approx(two_cliques.total_weight)


class TestIncrementalLouvain:
    def test_stable_graph_keeps_partition(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        redo = incremental_louvain(
            planted_blocks, base.assignment, nranks=4, machine=FREE
        )
        # Nothing changed: the old partition is already converged, so
        # quality matches and the run is a couple of iterations.
        assert redo.modularity == pytest.approx(base.modularity, abs=0.01)
        assert redo.total_iterations <= 4

    def test_quality_after_small_churn(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        churn = EdgeChurn.random(planted_blocks, 0.02, 0.02, seed=3)
        g2 = apply_churn(planted_blocks, churn)
        inc = incremental_louvain(
            g2, base.assignment, nranks=4, machine=FREE,
            reset_touched=churn.touched_vertices(),
        )
        scratch = run_louvain(g2, 4, machine=FREE)
        assert_valid_partition(inc.assignment, g2.num_vertices)
        assert inc.modularity >= scratch.modularity - 0.02
        assert inc.modularity == pytest.approx(
            modularity(g2, inc.assignment), abs=1e-9
        )

    def test_fewer_iterations_than_scratch(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        churn = EdgeChurn.random(planted_blocks, 0.01, 0.01, seed=5)
        g2 = apply_churn(planted_blocks, churn)
        inc = incremental_louvain(
            g2, base.assignment, nranks=4, machine=FREE
        )
        scratch = run_louvain(g2, 4, machine=FREE)
        assert inc.total_iterations < scratch.total_iterations

    def test_new_vertices_become_singleton_seeds(self, two_cliques):
        base = run_louvain(two_cliques, 2, machine=FREE)
        # Attach two new vertices to clique 0.
        churn = EdgeChurn(
            add_u=np.array([0, 1]), add_v=np.array([10, 11]),
            add_w=np.ones(2),
        )
        g2 = apply_churn(two_cliques, churn)
        inc = incremental_louvain(g2, base.assignment, nranks=2,
                                  machine=FREE)
        assert len(inc.assignment) == 12
        # The new leaves join clique 0's community.
        assert inc.assignment[10] == inc.assignment[0]
        assert inc.assignment[11] == inc.assignment[1]

    def test_assignment_longer_than_graph_rejected(self, two_cliques):
        with pytest.raises(ValueError):
            incremental_louvain(
                two_cliques, np.zeros(99, dtype=np.int64), nranks=2,
                machine=FREE,
            )

    def test_arbitrary_labels_accepted(self, planted_blocks):
        labels = (np.arange(200) // 25) * 1000 - 7  # weird label space
        r = incremental_louvain(
            planted_blocks, labels, nranks=4, machine=FREE
        )
        assert r.modularity > 0.75


class TestChurnStatistics:
    def test_classification(self):
        prev = np.array([0, 0, 1, 1])
        churn = EdgeChurn(
            add_u=np.array([0, 0]), add_v=np.array([1, 2]),
            add_w=np.ones(2),
            del_u=np.array([2]), del_v=np.array([3]),
        )
        stats = churn_statistics(churn, prev)
        assert isinstance(stats, ChurnStats)
        assert stats.inter_inserted == 1  # 0-2 crosses communities
        assert stats.intra_deleted == 1  # 2-3 was intra
        assert stats.touched_vertices == 4

    def test_empty_previous(self):
        stats = churn_statistics(EdgeChurn(), np.empty(0, np.int64))
        assert stats.touched_fraction == 0.0
