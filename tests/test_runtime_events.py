"""Unit tests for timeline event recording and Chrome-trace export."""

import json

import pytest

from repro.runtime import CORI_HASWELL, run_spmd
from repro.runtime.tracing import RankTrace, TraceEvent, TraceReport


def traced_run(size=3):
    def prog(comm):
        comm.charge_compute(1e6)
        comm.allreduce(comm.rank)
        comm.send(list(range(100)), (comm.rank + 1) % comm.size)
        comm.recv((comm.rank - 1) % comm.size)
        return None

    return run_spmd(
        size, prog, machine=CORI_HASWELL, timeout=10.0, trace_events=True
    )


class TestEventRecording:
    def test_disabled_by_default(self):
        r = run_spmd(
            2, lambda comm: comm.allreduce(1), machine=CORI_HASWELL,
            timeout=10.0,
        )
        assert all(t.events is None for t in r.trace.ranks)
        with pytest.raises(ValueError, match="trace_events"):
            r.trace.to_chrome_trace()

    def test_events_recorded_per_rank(self):
        r = traced_run()
        for t in r.trace.ranks:
            assert t.events, f"rank {t.rank} recorded no events"
            cats = {e.category for e in t.events}
            assert "compute" in cats
            assert "allreduce" in cats

    def test_events_are_ordered_and_disjoint(self):
        r = traced_run()
        for t in r.trace.ranks:
            prev_end = 0.0
            for ev in t.events:
                assert ev.start >= prev_end - 1e-15
                assert ev.end >= ev.start
                prev_end = ev.end

    def test_event_durations_sum_to_category_totals(self):
        r = traced_run()
        for t in r.trace.ranks:
            by_cat = {}
            for ev in t.events:
                by_cat[ev.category] = by_cat.get(ev.category, 0.0) + ev.duration
            for cat, total in by_cat.items():
                assert total == pytest.approx(t.seconds[cat], rel=1e-9)

    def test_zero_duration_charges_skipped(self):
        t = RankTrace(rank=0)
        t.enable_events()
        t.charge("compute", 0.0, at=1.0)
        assert t.events == []


class TestChromeExport:
    def test_export_structure(self):
        r = traced_run()
        doc = r.trace.to_chrome_trace()
        assert "traceEvents" in doc
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(spans) > 0
        tids = {e["tid"] for e in spans}
        assert tids == {0, 1, 2}
        for e in spans:
            assert e["dur"] >= 0
            assert e["ts"] >= 0
        # Metadata names the process and every rank's thread (Perfetto
        # labels the timelines with these).
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert thread_names == {0: "rank 0", 1: "rank 1", 2: "rank 2"}

    def test_export_is_json_serializable(self):
        r = traced_run()
        text = json.dumps(r.trace.to_chrome_trace())
        parsed = json.loads(text)
        assert parsed["displayTimeUnit"] == "ms"

    def test_time_scale(self):
        report = TraceReport.merge([
            _trace_with_event(0, "compute", 0.0, 0.5),
        ])
        doc = report.to_chrome_trace(time_scale=1000.0)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["dur"] == pytest.approx(500.0)


def _trace_with_event(rank, cat, start, end):
    t = RankTrace(rank=rank)
    t.enable_events()
    t.events.append(TraceEvent(category=cat, start=start, end=end))
    t.seconds[cat] += end - start
    return t
