"""Unit tests for 1-D partitioners and the community placer."""

import numpy as np
import pytest

from repro.graph import (
    even_edge,
    even_vertex,
    local_counts,
    owner_of,
    place_communities,
)


class TestEvenVertex:
    def test_exact_division(self):
        off = even_vertex(12, 4)
        np.testing.assert_array_equal(off, [0, 3, 6, 9, 12])

    def test_remainder_spread_to_front(self):
        off = even_vertex(10, 4)
        np.testing.assert_array_equal(local_counts(off), [3, 3, 2, 2])

    def test_more_ranks_than_vertices(self):
        off = even_vertex(2, 5)
        counts = local_counts(off)
        assert counts.sum() == 2
        assert counts.max() == 1

    def test_single_rank(self):
        np.testing.assert_array_equal(even_vertex(7, 1), [0, 7])

    def test_empty_graph(self):
        off = even_vertex(0, 3)
        np.testing.assert_array_equal(off, [0, 0, 0, 0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            even_vertex(5, 0)
        with pytest.raises(ValueError):
            even_vertex(-1, 2)


class TestEvenEdge:
    def test_balances_edge_counts(self):
        # One heavy vertex at the front.
        rows = np.array([100, 1, 1, 1, 1, 1, 1, 1])
        off = even_edge(rows, 2)
        # Rank 0 should get just the heavy vertex (or close to it).
        counts = [rows[off[i]:off[i + 1]].sum() for i in range(2)]
        assert abs(counts[0] - counts[1]) <= 100  # better than naive split
        assert off[1] <= 2

    def test_uniform_rows_matches_even_vertex(self):
        rows = np.full(12, 3)
        off = even_edge(rows, 4)
        np.testing.assert_array_equal(off, even_vertex(12, 4))

    def test_monotone_and_covering(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 50, 100)
        for p in (1, 2, 3, 7, 16):
            off = even_edge(rows, p)
            assert off[0] == 0 and off[-1] == 100
            assert np.all(np.diff(off) >= 0)

    def test_many_empty_rows(self):
        rows = np.zeros(10, dtype=np.int64)
        off = even_edge(rows, 4)
        assert off[0] == 0 and off[-1] == 10
        assert np.all(np.diff(off) >= 0)

    def test_all_empty_rows_spread_like_even_vertex(self):
        """A fully edgeless graph must not collapse onto one rank."""
        rows = np.zeros(10, dtype=np.int64)
        off = even_edge(rows, 4)
        np.testing.assert_array_equal(off, even_vertex(10, 4))
        assert local_counts(off).max() <= 3

    def test_more_ranks_than_vertices(self):
        rows = np.array([2, 3], dtype=np.int64)
        off = even_edge(rows, 5)
        assert off[0] == 0 and off[-1] == 2
        assert np.all(np.diff(off) >= 0)
        assert local_counts(off).sum() == 2

    def test_more_ranks_than_vertices_all_empty(self):
        off = even_edge(np.zeros(3, dtype=np.int64), 7)
        assert off[0] == 0 and off[-1] == 3
        assert local_counts(off).max() <= 1

    def test_monotonicity_with_degenerate_heavy_tail(self):
        """All weight in the last row: every interior cut lands on the
        same boundary; np.maximum.accumulate must keep offsets sorted."""
        rows = np.zeros(8, dtype=np.int64)
        rows[-1] = 1000
        off = even_edge(rows, 4)
        assert np.all(np.diff(off) >= 0)
        assert off[0] == 0 and off[-1] == 8
        # owner_of must stay usable on the degenerate offsets.
        owners = owner_of(off, np.arange(8))
        assert np.all(np.diff(owners) >= 0)

    def test_monotonicity_with_heavy_head(self):
        rows = np.zeros(8, dtype=np.int64)
        rows[0] = 1000
        off = even_edge(rows, 4)
        assert np.all(np.diff(off) >= 0)
        assert off[0] == 0 and off[-1] == 8


class TestOwnerOf:
    def test_owner_lookup(self):
        off = np.array([0, 3, 6, 9])
        np.testing.assert_array_equal(
            owner_of(off, np.array([0, 2, 3, 5, 8])), [0, 0, 1, 1, 2]
        )

    def test_scalar(self):
        off = np.array([0, 3, 6])
        assert owner_of(off, 4) == 1

    def test_out_of_range(self):
        off = np.array([0, 3, 6])
        with pytest.raises(ValueError):
            owner_of(off, 6)

    def test_boundaries_are_owned_by_upper_rank(self):
        off = np.array([0, 3, 6])
        assert owner_of(off, 3) == 1
        assert owner_of(off, 0) == 0

    def test_every_partition_boundary(self):
        off = np.array([0, 2, 2, 5, 9])
        # A vertex exactly on a boundary belongs to the first rank whose
        # range starts there; empty ranks (here rank 1) own nothing.
        np.testing.assert_array_equal(
            owner_of(off, np.array([0, 1, 2, 4, 5, 8])),
            [0, 0, 2, 2, 3, 3],
        )

    def test_last_vertex_of_last_rank(self):
        off = np.array([0, 3, 6])
        assert owner_of(off, 5) == 1
        with pytest.raises(ValueError):
            owner_of(off, -1)


class TestPlaceCommunities:
    def _clique_pair_metagraph(self):
        """Two 3-community cliques joined by one weak edge.

        Directed stored-entry list: communities {0,1,2} heavily
        interconnected, {3,4,5} heavily interconnected, one light
        2 <-> 3 bridge.
        """
        src, dst, w = [], [], []

        def link(a, b, weight):
            src.extend([a, b])
            dst.extend([b, a])
            w.extend([weight, weight])

        for grp in ((0, 1, 2), (3, 4, 5)):
            for i in grp:
                for j in grp:
                    if i < j:
                        link(i, j, 10.0)
        link(2, 3, 1.0)
        return (
            np.array(src, dtype=np.int64),
            np.array(dst, dtype=np.int64),
            np.array(w, dtype=np.float64),
        )

    def test_colocates_connected_communities(self):
        src, dst, w = self._clique_pair_metagraph()
        rank_of = place_communities(6, src, dst, w, 2)
        # Each clique must land whole on one rank (and the two cliques
        # on different ranks, since either alone exceeds half the load).
        assert len(set(rank_of[:3].tolist())) == 1
        assert len(set(rank_of[3:].tolist())) == 1
        assert rank_of[0] != rank_of[3]

    def test_deterministic(self):
        src, dst, w = self._clique_pair_metagraph()
        a = place_communities(6, src, dst, w, 4)
        b = place_communities(6, src, dst, w, 4)
        np.testing.assert_array_equal(a, b)

    def test_load_cap_respected(self):
        # 8 isolated communities of equal size: the cap forces an even
        # 2-per-rank spread at p = 4 regardless of processing order.
        src = np.repeat(np.arange(8, dtype=np.int64), 2)
        dst = src.copy()  # self-loop entries only (no affinity signal)
        w = np.ones(len(src))
        rank_of = place_communities(8, src, dst, w, 4)
        loads = np.bincount(rank_of, minlength=4)
        assert loads.max() <= 2 * -(-8 * 2 * (1.0 + 0.1) // (4 * 2))

    def test_single_rank_is_trivial(self):
        src, dst, w = self._clique_pair_metagraph()
        np.testing.assert_array_equal(
            place_communities(6, src, dst, w, 1), np.zeros(6)
        )

    def test_edgeless_metagraph_spreads_evenly(self):
        empty = np.empty(0, dtype=np.int64)
        rank_of = place_communities(6, empty, empty, empty.astype(float), 3)
        loads = np.bincount(rank_of, minlength=3)
        assert loads.max() == 2

    def test_isolated_communities_still_placed(self):
        # Community 2 never appears in the edge list; it must still get
        # a valid owner.
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([1, 0], dtype=np.int64)
        w = np.ones(2)
        rank_of = place_communities(3, src, dst, w, 2)
        assert rank_of.min() >= 0 and rank_of.max() < 2

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            place_communities(
                2,
                np.array([0, 2]),
                np.array([1, 0]),
                np.ones(2),
                2,
            )

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(ValueError):
            place_communities(
                2, np.array([0]), np.array([1, 0]), np.ones(2), 2
            )
