"""Unit tests for 1-D partitioners."""

import numpy as np
import pytest

from repro.graph import even_edge, even_vertex, local_counts, owner_of


class TestEvenVertex:
    def test_exact_division(self):
        off = even_vertex(12, 4)
        np.testing.assert_array_equal(off, [0, 3, 6, 9, 12])

    def test_remainder_spread_to_front(self):
        off = even_vertex(10, 4)
        np.testing.assert_array_equal(local_counts(off), [3, 3, 2, 2])

    def test_more_ranks_than_vertices(self):
        off = even_vertex(2, 5)
        counts = local_counts(off)
        assert counts.sum() == 2
        assert counts.max() == 1

    def test_single_rank(self):
        np.testing.assert_array_equal(even_vertex(7, 1), [0, 7])

    def test_empty_graph(self):
        off = even_vertex(0, 3)
        np.testing.assert_array_equal(off, [0, 0, 0, 0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            even_vertex(5, 0)
        with pytest.raises(ValueError):
            even_vertex(-1, 2)


class TestEvenEdge:
    def test_balances_edge_counts(self):
        # One heavy vertex at the front.
        rows = np.array([100, 1, 1, 1, 1, 1, 1, 1])
        off = even_edge(rows, 2)
        # Rank 0 should get just the heavy vertex (or close to it).
        counts = [rows[off[i]:off[i + 1]].sum() for i in range(2)]
        assert abs(counts[0] - counts[1]) <= 100  # better than naive split
        assert off[1] <= 2

    def test_uniform_rows_matches_even_vertex(self):
        rows = np.full(12, 3)
        off = even_edge(rows, 4)
        np.testing.assert_array_equal(off, even_vertex(12, 4))

    def test_monotone_and_covering(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 50, 100)
        for p in (1, 2, 3, 7, 16):
            off = even_edge(rows, p)
            assert off[0] == 0 and off[-1] == 100
            assert np.all(np.diff(off) >= 0)

    def test_many_empty_rows(self):
        rows = np.zeros(10, dtype=np.int64)
        off = even_edge(rows, 4)
        assert off[0] == 0 and off[-1] == 10
        assert np.all(np.diff(off) >= 0)


class TestOwnerOf:
    def test_owner_lookup(self):
        off = np.array([0, 3, 6, 9])
        np.testing.assert_array_equal(
            owner_of(off, np.array([0, 2, 3, 5, 8])), [0, 0, 1, 1, 2]
        )

    def test_scalar(self):
        off = np.array([0, 3, 6])
        assert owner_of(off, 4) == 1

    def test_out_of_range(self):
        off = np.array([0, 3, 6])
        with pytest.raises(ValueError):
            owner_of(off, 6)

    def test_boundaries_are_owned_by_upper_rank(self):
        off = np.array([0, 3, 6])
        assert owner_of(off, 3) == 1
        assert owner_of(off, 0) == 0
