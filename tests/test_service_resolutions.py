"""Tests for the multi-resolution detection API.

``DetectionRequest`` grew two request-level quality knobs —
``resolution`` (the gamma zoom level) and ``refine`` — that fold into
the effective config, so they must produce distinct cache keys, show up
in response summaries, and flow through ``detect_at_resolutions`` on
both the Engine and the serving tier.
"""

import numpy as np
import pytest

from repro.core import LouvainConfig
from repro.core.distlouvain import run_louvain
from repro.generators import make_graph
from repro.service import DetectionRequest, Engine, JobState, ResultStore


@pytest.fixture(scope="module")
def tiny():
    return make_graph("soc-friendster", scale="tiny")


class TestRequestKnobs:
    def test_resolution_folds_into_config(self, tiny):
        req = DetectionRequest(graph=tiny, nranks=2, resolution=2.0)
        assert req.config.resolution == 2.0

    def test_refine_folds_into_config(self, tiny):
        req = DetectionRequest(graph=tiny, nranks=2, refine="leiden")
        assert req.config.refine == "leiden"

    def test_none_inherits_config(self, tiny):
        cfg = LouvainConfig(resolution=0.5, refine="leiden")
        req = DetectionRequest(graph=tiny, nranks=2, config=cfg)
        assert req.config.resolution == 0.5
        assert req.config.refine == "leiden"

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_resolution_rejected(self, tiny, bad):
        with pytest.raises(ValueError, match="resolution"):
            DetectionRequest(graph=tiny, nranks=2, resolution=bad)

    def test_unknown_refine_rejected(self, tiny):
        with pytest.raises(ValueError, match="refine"):
            DetectionRequest(graph=tiny, nranks=2, refine="louvain")

    def test_summary_stamps_non_defaults(self, tiny):
        with Engine(workers=1) as engine:
            req = DetectionRequest(
                graph=tiny, nranks=2, resolution=2.0, refine="leiden"
            )
            response = engine.detect(req)
        assert "resolution=2" in response.summary()
        assert "refine=leiden" in response.summary()

    def test_summary_silent_at_defaults(self, tiny):
        with Engine(workers=1) as engine:
            response = engine.detect(DetectionRequest(graph=tiny, nranks=2))
        assert "resolution" not in response.summary()
        assert "refine" not in response.summary()


class TestCacheKeys:
    def test_each_resolution_is_a_distinct_key(self, tiny):
        keys = {
            DetectionRequest(graph=tiny, nranks=2, resolution=r).cache_key()
            for r in (0.5, 1.0, 2.0)
        }
        assert len(keys) == 3

    def test_refine_changes_the_key(self, tiny):
        plain = DetectionRequest(graph=tiny, nranks=2).cache_key()
        refined = DetectionRequest(
            graph=tiny, nranks=2, refine="leiden"
        ).cache_key()
        assert plain != refined

    def test_vertex_following_changes_the_key(self, tiny):
        plain = DetectionRequest(graph=tiny, nranks=2).cache_key()
        vf = DetectionRequest(
            graph=tiny,
            nranks=2,
            config=LouvainConfig(vertex_following=True),
        ).cache_key()
        assert plain != vf

    def test_same_resolution_same_key(self, tiny):
        a = DetectionRequest(graph=tiny, nranks=2, resolution=2.0)
        b = DetectionRequest(graph=tiny, nranks=2, resolution=2.0)
        assert a.cache_key() == b.cache_key()

    def test_repeat_at_resolution_hits_cache_bit_identical(self, tiny):
        req = DetectionRequest(graph=tiny, nranks=2, resolution=2.0)
        with Engine(workers=1, store=ResultStore(capacity=8)) as engine:
            first = engine.wait(engine.submit(req))
            second = engine.wait(engine.submit(req))
        assert not first.cache_hit
        assert second.cache_hit
        np.testing.assert_array_equal(
            first.result.assignment, second.result.assignment
        )
        assert first.result.modularity == second.result.modularity


class TestDetectAtResolutions:
    def test_one_response_per_level_in_order(self, tiny):
        levels = [0.5, 1.0, 2.0]
        base = DetectionRequest(graph=tiny, nranks=2)
        with Engine(workers=2) as engine:
            responses = engine.detect_at_resolutions(base, levels)
        assert len(responses) == len(levels)
        for level, response in zip(levels, responses):
            assert response.state is JobState.DONE
            assert response.request.config.resolution == level

    def test_matches_direct_runs(self, tiny):
        base = DetectionRequest(graph=tiny, nranks=2)
        with Engine(workers=2) as engine:
            responses = engine.detect_at_resolutions(base, [0.5, 2.0])
        for level, response in zip((0.5, 2.0), responses):
            ref = run_louvain(
                tiny, 2, LouvainConfig(resolution=level)
            )
            np.testing.assert_array_equal(
                response.result.assignment, ref.assignment
            )

    def test_zoom_monotonicity(self, tiny):
        # Higher gamma favours smaller communities: community count is
        # non-decreasing as the zoom level rises.
        base = DetectionRequest(graph=tiny, nranks=2)
        with Engine(workers=2) as engine:
            responses = engine.detect_at_resolutions(base, [0.25, 1.0, 4.0])
        counts = [r.result.num_communities for r in responses]
        assert counts == sorted(counts)

    def test_empty_levels_rejected(self, tiny):
        with Engine(workers=1) as engine:
            with pytest.raises(ValueError, match="resolutions"):
                engine.detect_at_resolutions(
                    DetectionRequest(graph=tiny, nranks=2), []
                )

    def test_request_refine_rides_along(self, tiny):
        base = DetectionRequest(graph=tiny, nranks=2, refine="leiden")
        with Engine(workers=1) as engine:
            (response,) = engine.detect_at_resolutions(base, [2.0])
        assert response.request.config.refine == "leiden"
        assert response.request.config.resolution == 2.0


class TestServingTierSweep:
    def test_one_assignment_per_level(self):
        from repro.serving import ServingTier

        g = make_graph("channel", scale="tiny", seed=0)
        tier = ServingTier(shards=1, workers_per_shard=2)
        try:
            tier.create_tenant("t", nranks=2)
            tier.load_graph("t", g)
            with pytest.raises(ValueError, match="resolutions"):
                tier.detect_at_resolutions("t", [])
            handles = tier.detect_at_resolutions("t", [0.5, 1.0, 2.0])
            responses = [tier.wait(h, timeout=180.0) for h in handles]
        finally:
            tier.shutdown()
        assert len(responses) == 3
        for level, response in zip((0.5, 1.0, 2.0), responses):
            assert response.state is JobState.DONE
            assert response.request.config.resolution == level
