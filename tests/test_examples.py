"""Smoke tests: the runnable examples must stay runnable.

Only the fast examples run here (the full set is exercised manually /
in benchmarks); each must exit 0 and print its key result lines.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: float = 240.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "communities found:" in proc.stdout
    assert "trace over 8 rank(s)" in proc.stdout


def test_binary_file_pipeline():
    proc = run_example("binary_file_pipeline.py")
    assert proc.returncode == 0, proc.stderr
    assert "modelled I/O share" in proc.stdout
    assert "communities found:" in proc.stdout


@pytest.mark.slow
def test_social_network_analysis():
    proc = run_example("social_network_analysis.py")
    assert proc.returncode == 0, proc.stderr
    assert "F-score" in proc.stdout


@pytest.mark.slow
def test_dynamic_communities():
    proc = run_example("dynamic_communities.py")
    assert proc.returncode == 0, proc.stderr
    assert "churn batches" in proc.stdout


@pytest.mark.slow
def test_scaling_study():
    proc = run_example("scaling_study.py")
    assert proc.returncode == 0, proc.stderr
    assert "extrapolated strong scaling" in proc.stdout


def test_service_demo():
    proc = run_example("service_demo.py")
    assert proc.returncode == 0, proc.stderr
    assert "concurrent jobs: 20/20 done, 0 lost" in proc.stdout
    assert "resumed from checkpoint" in proc.stdout
    assert "recovered result bit-identical to uninterrupted run: True" in proc.stdout
    assert "(cache hit)" in proc.stdout
    assert "cached result bit-identical to original: True" in proc.stdout


def test_checkpoint_resume():
    proc = run_example("checkpoint_resume.py")
    assert proc.returncode == 0, proc.stderr
    assert "injected failure:" in proc.stdout
    assert "bit-identical to uninterrupted run: True" in proc.stdout


def test_autotune_demo():
    proc = run_example("autotune_demo.py")
    assert proc.returncode == 0, proc.stderr
    assert "database hit" in proc.stdout
    assert "nearest tuned neighbour" in proc.stdout
    assert "autotune demo ok" in proc.stdout


@pytest.mark.slow
def test_observability_demo():
    proc = run_example("observability_demo.py", timeout=420.0)
    assert proc.returncode == 0, proc.stderr
    assert "drift crossed" in proc.stdout
    assert "forced background re-tune ran" in proc.stdout
    assert "bit-identical with obs on/off" in proc.stdout
    assert "observability demo OK" in proc.stdout
