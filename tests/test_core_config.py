"""Unit tests for LouvainConfig validation and variant semantics."""

import pytest

from repro.core import PAPER_VARIANTS, LouvainConfig, Variant


class TestVariant:
    def test_et_flags(self):
        assert Variant.ET.uses_early_termination
        assert not Variant.ET.uses_threshold_cycling
        assert not Variant.ET.uses_inactive_exit

    def test_etc_flags(self):
        assert Variant.ETC.uses_early_termination
        assert Variant.ETC.uses_inactive_exit

    def test_tc_flags(self):
        assert Variant.THRESHOLD_CYCLING.uses_threshold_cycling
        assert not Variant.THRESHOLD_CYCLING.uses_early_termination

    def test_et_tc_combines(self):
        assert Variant.ET_TC.uses_early_termination
        assert Variant.ET_TC.uses_threshold_cycling
        # Table VI pairs TC with plain ET, not with the ETC exit.
        assert not Variant.ET_TC.uses_inactive_exit

    def test_baseline_flags(self):
        v = Variant.BASELINE
        assert not (
            v.uses_early_termination
            or v.uses_threshold_cycling
            or v.uses_inactive_exit
        )


class TestLouvainConfig:
    def test_paper_defaults(self):
        cfg = LouvainConfig()
        assert cfg.tau == 1e-6
        assert cfg.et_inactive_floor == 0.02
        assert cfg.etc_exit_fraction == 0.90

    @pytest.mark.parametrize("bad", [0.0, 1.0, -1e-3, 2.0])
    def test_tau_validated(self, bad):
        with pytest.raises(ValueError):
            LouvainConfig(tau=bad)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_alpha_validated(self, bad):
        with pytest.raises(ValueError):
            LouvainConfig(alpha=bad)

    def test_alpha_bounds_inclusive(self):
        LouvainConfig(alpha=0.0)
        LouvainConfig(alpha=1.0)

    def test_exit_fraction_validated(self):
        with pytest.raises(ValueError):
            LouvainConfig(etc_exit_fraction=0.0)
        LouvainConfig(etc_exit_fraction=1.0)

    def test_cycle_validated(self):
        with pytest.raises(ValueError):
            LouvainConfig(threshold_cycle=())
        with pytest.raises(ValueError):
            LouvainConfig(threshold_cycle=((1e-3, 0),))

    def test_caps_validated(self):
        with pytest.raises(ValueError):
            LouvainConfig(max_phases=0)
        with pytest.raises(ValueError):
            LouvainConfig(max_iterations=0)

    def test_min_cycle_tau(self):
        cfg = LouvainConfig(threshold_cycle=((1e-2, 1), (1e-7, 2)))
        assert cfg.min_cycle_tau == 1e-7

    def test_with_variant(self):
        cfg = LouvainConfig().with_variant(Variant.ET, alpha=0.75)
        assert cfg.variant is Variant.ET
        assert cfg.alpha == 0.75

    def test_labels_match_paper_legends(self):
        assert LouvainConfig().label() == "Baseline"
        assert (
            LouvainConfig(variant=Variant.THRESHOLD_CYCLING).label()
            == "Threshold Cycling"
        )
        assert LouvainConfig(variant=Variant.ET, alpha=0.25).label() == "ET(0.25)"
        assert LouvainConfig(variant=Variant.ETC, alpha=0.75).label() == "ETC(0.75)"
        assert (
            LouvainConfig(variant=Variant.ET_TC, alpha=0.25).label()
            == "ET(0.25)+TC"
        )

    def test_paper_variant_set(self):
        labels = [c.label() for c in PAPER_VARIANTS]
        assert labels == [
            "Baseline",
            "Threshold Cycling",
            "ET(0.25)",
            "ET(0.75)",
            "ETC(0.25)",
            "ETC(0.75)",
        ]

    def test_frozen(self):
        cfg = LouvainConfig()
        with pytest.raises(AttributeError):
            cfg.tau = 0.5


class TestConfigSerialization:
    def test_round_trip_defaults(self):
        cfg = LouvainConfig()
        assert LouvainConfig.from_dict(cfg.to_dict()) == cfg

    def test_round_trip_nondefault(self):
        cfg = LouvainConfig(
            variant=Variant.ET_TC,
            alpha=0.25,
            tau=1e-4,
            threshold_cycle=((1e-2, 2), (1e-5, 4)),
            seed=9,
            use_coloring=True,
        )
        assert LouvainConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_is_json_serializable(self):
        import json

        blob = json.dumps(LouvainConfig(variant=Variant.ETC).to_dict())
        assert '"etc"' in blob

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            LouvainConfig.from_dict({"tau": 1e-6, "warp_speed": True})

    def test_from_dict_partial_uses_defaults(self):
        cfg = LouvainConfig.from_dict({"seed": 42})
        assert cfg.seed == 42
        assert cfg.tau == LouvainConfig().tau


class TestCacheKey:
    def test_stable_across_instances(self):
        assert LouvainConfig().cache_key() == LouvainConfig().cache_key()

    def test_default_equal_configs_equal_keys(self):
        explicit = LouvainConfig(tau=LouvainConfig().tau, seed=LouvainConfig().seed)
        assert explicit.cache_key() == LouvainConfig().cache_key()

    def test_variant_changes_key(self):
        assert (
            LouvainConfig(variant=Variant.ET).cache_key()
            != LouvainConfig(variant=Variant.ETC).cache_key()
        )

    def test_alpha_changes_key(self):
        a = LouvainConfig(variant=Variant.ET, alpha=0.25)
        b = LouvainConfig(variant=Variant.ET, alpha=0.75)
        assert a.cache_key() != b.cache_key()

    def test_seed_changes_key(self):
        assert LouvainConfig(seed=1).cache_key() != LouvainConfig(seed=2).cache_key()

    def test_transport_knobs_do_not_change_key(self):
        # Transport ablations are proven bit-identical; serving a pull
        # result for a push request is correct.
        base = LouvainConfig()
        for knob in (
            "use_neighbor_collectives",
            "ghost_delta_updates",
            "community_push_updates",
        ):
            flipped = LouvainConfig(
                **{knob: not getattr(base, knob)}
            )
            assert flipped.cache_key() == base.cache_key(), knob

    def test_validate_invariants_does_not_change_key(self):
        assert (
            LouvainConfig(validate_invariants=True).cache_key()
            == LouvainConfig(validate_invariants=False).cache_key()
        )
