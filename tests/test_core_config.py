"""Unit tests for LouvainConfig validation and variant semantics."""

import pytest

from repro.core import PAPER_VARIANTS, LouvainConfig, Variant


class TestVariant:
    def test_et_flags(self):
        assert Variant.ET.uses_early_termination
        assert not Variant.ET.uses_threshold_cycling
        assert not Variant.ET.uses_inactive_exit

    def test_etc_flags(self):
        assert Variant.ETC.uses_early_termination
        assert Variant.ETC.uses_inactive_exit

    def test_tc_flags(self):
        assert Variant.THRESHOLD_CYCLING.uses_threshold_cycling
        assert not Variant.THRESHOLD_CYCLING.uses_early_termination

    def test_et_tc_combines(self):
        assert Variant.ET_TC.uses_early_termination
        assert Variant.ET_TC.uses_threshold_cycling
        # Table VI pairs TC with plain ET, not with the ETC exit.
        assert not Variant.ET_TC.uses_inactive_exit

    def test_baseline_flags(self):
        v = Variant.BASELINE
        assert not (
            v.uses_early_termination
            or v.uses_threshold_cycling
            or v.uses_inactive_exit
        )


class TestLouvainConfig:
    def test_paper_defaults(self):
        cfg = LouvainConfig()
        assert cfg.tau == 1e-6
        assert cfg.et_inactive_floor == 0.02
        assert cfg.etc_exit_fraction == 0.90

    @pytest.mark.parametrize("bad", [0.0, 1.0, -1e-3, 2.0])
    def test_tau_validated(self, bad):
        with pytest.raises(ValueError):
            LouvainConfig(tau=bad)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_alpha_validated(self, bad):
        with pytest.raises(ValueError):
            LouvainConfig(alpha=bad)

    def test_alpha_bounds_inclusive(self):
        LouvainConfig(alpha=0.0)
        LouvainConfig(alpha=1.0)

    def test_exit_fraction_validated(self):
        with pytest.raises(ValueError):
            LouvainConfig(etc_exit_fraction=0.0)
        LouvainConfig(etc_exit_fraction=1.0)

    def test_cycle_validated(self):
        with pytest.raises(ValueError):
            LouvainConfig(threshold_cycle=())
        with pytest.raises(ValueError):
            LouvainConfig(threshold_cycle=((1e-3, 0),))

    def test_caps_validated(self):
        with pytest.raises(ValueError):
            LouvainConfig(max_phases=0)
        with pytest.raises(ValueError):
            LouvainConfig(max_iterations=0)

    def test_min_cycle_tau(self):
        cfg = LouvainConfig(threshold_cycle=((1e-2, 1), (1e-7, 2)))
        assert cfg.min_cycle_tau == 1e-7

    def test_with_variant(self):
        cfg = LouvainConfig().with_variant(Variant.ET, alpha=0.75)
        assert cfg.variant is Variant.ET
        assert cfg.alpha == 0.75

    def test_labels_match_paper_legends(self):
        assert LouvainConfig().label() == "Baseline"
        assert (
            LouvainConfig(variant=Variant.THRESHOLD_CYCLING).label()
            == "Threshold Cycling"
        )
        assert LouvainConfig(variant=Variant.ET, alpha=0.25).label() == "ET(0.25)"
        assert LouvainConfig(variant=Variant.ETC, alpha=0.75).label() == "ETC(0.75)"
        assert (
            LouvainConfig(variant=Variant.ET_TC, alpha=0.25).label()
            == "ET(0.25)+TC"
        )

    def test_paper_variant_set(self):
        labels = [c.label() for c in PAPER_VARIANTS]
        assert labels == [
            "Baseline",
            "Threshold Cycling",
            "ET(0.25)",
            "ET(0.75)",
            "ETC(0.25)",
            "ETC(0.75)",
        ]

    def test_frozen(self):
        cfg = LouvainConfig()
        with pytest.raises(AttributeError):
            cfg.tau = 0.5
