"""Unit tests for deficit-round-robin fair-share admission."""

from dataclasses import dataclass

import pytest

from repro.service import AdmissionError
from repro.serving import DEFAULT_TENANT, DeficitRoundRobinScheduler, tenant_of


@dataclass(frozen=True)
class FakeJob:
    tenant: str
    label: str


def _fill(s, tenant, n, priority=0):
    return [
        s.submit(FakeJob(tenant, f"{tenant}-{i}"), priority=priority)
        for i in range(n)
    ]


class TestTenantOf:
    def test_bare_request(self):
        assert tenant_of(FakeJob("acme", "x")) == "acme"

    def test_wrapped_request(self):
        class Wrapper:
            request = FakeJob("acme", "x")

        assert tenant_of(Wrapper()) == "acme"

    def test_empty_maps_to_default(self):
        assert tenant_of(FakeJob("", "x")) == DEFAULT_TENANT
        assert tenant_of(object()) == DEFAULT_TENANT


class TestRoundRobin:
    def test_interleaves_tenants(self):
        s = DeficitRoundRobinScheduler(max_pending=64)
        _fill(s, "heavy", 6)
        _fill(s, "light", 2)
        order = [s.pop().label for _ in range(8)]
        # Light tenant's two jobs are served in the first two rounds,
        # not behind heavy's backlog.
        assert order.index("light-0") <= 1
        assert order.index("light-1") <= 3

    def test_starved_tenant_waits_for_own_backlog_only(self):
        s = DeficitRoundRobinScheduler(max_pending=256)
        _fill(s, "heavy", 50)
        _fill(s, "starved", 1)
        order = [s.pop().label for _ in range(51)]
        # One pending job -> served within the first round despite 50
        # jobs submitted ahead of it.
        assert order.index("starved-0") <= 1

    def test_priority_order_within_tenant(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        s.submit(FakeJob("t", "low"), priority=0)
        s.submit(FakeJob("t", "high"), priority=9)
        s.submit(FakeJob("t", "mid"), priority=4)
        assert [s.pop().label for _ in range(3)] == ["high", "mid", "low"]

    def test_single_tenant_degenerates_to_fifo(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        _fill(s, "only", 5)
        assert [s.pop().label for _ in range(5)] == [
            f"only-{i}" for i in range(5)
        ]

    def test_three_way_fairness(self):
        s = DeficitRoundRobinScheduler(max_pending=64)
        for t in ("a", "b", "c"):
            _fill(s, t, 4)
        order = [s.pop().tenant for _ in range(12)]
        # Every consecutive window of 3 dispatches serves 3 distinct
        # tenants while all are backlogged.
        for i in range(0, 12, 3):
            assert sorted(order[i : i + 3]) == ["a", "b", "c"]

    def test_cost_weighting(self):
        # Tenant "big" jobs cost 2 quanta: it gets every other round.
        s = DeficitRoundRobinScheduler(
            max_pending=64,
            quantum=1.0,
            cost_of=lambda j: 2.0 if j.tenant == "big" else 1.0,
        )
        _fill(s, "big", 3)
        _fill(s, "small", 6)
        order = [s.pop().tenant for _ in range(9)]
        assert order.count("big") == 3
        # First big dispatch needs two visits -> small runs first.
        assert order[0] == "small"


class TestQuotas:
    def test_tenant_at_queue_cap(self):
        s = DeficitRoundRobinScheduler(max_pending=64)
        s.set_quota("capped", 2)
        _fill(s, "capped", 2)
        with pytest.raises(AdmissionError) as exc:
            s.submit(FakeJob("capped", "overflow"))
        assert exc.value.reason == "tenant-queue-full"
        # Other tenants are unaffected.
        s.submit(FakeJob("other", "fine"))

    def test_zero_quota_rejects_outright(self):
        s = DeficitRoundRobinScheduler(max_pending=64)
        s.set_quota("banned", 0)
        with pytest.raises(AdmissionError) as exc:
            s.submit(FakeJob("banned", "never"))
        assert exc.value.reason == "tenant-queue-full"

    def test_pop_frees_quota(self):
        s = DeficitRoundRobinScheduler(max_pending=64)
        s.set_quota("t", 1)
        _fill(s, "t", 1)
        s.pop()
        s.submit(FakeJob("t", "again"))  # no raise

    def test_cancel_frees_quota(self):
        s = DeficitRoundRobinScheduler(max_pending=64)
        s.set_quota("t", 1)
        (ticket,) = _fill(s, "t", 1)
        assert s.cancel(ticket)
        s.submit(FakeJob("t", "again"))  # no raise

    def test_default_quota_applies_to_unregistered(self):
        s = DeficitRoundRobinScheduler(max_pending=64, default_max_queued=1)
        _fill(s, "unknown", 1)
        with pytest.raises(AdmissionError):
            s.submit(FakeJob("unknown", "over"))

    def test_global_bound_still_enforced(self):
        s = DeficitRoundRobinScheduler(max_pending=3)
        _fill(s, "a", 2)
        _fill(s, "b", 1)
        with pytest.raises(AdmissionError) as exc:
            s.submit(FakeJob("c", "over"))
        assert exc.value.reason == "queue-full"

    def test_quota_validation(self):
        s = DeficitRoundRobinScheduler()
        with pytest.raises(ValueError):
            s.set_quota("t", -1)
        with pytest.raises(ValueError):
            DeficitRoundRobinScheduler(quantum=0.0)


class TestCancellation:
    def test_cancelled_jobs_never_pop(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        tickets = _fill(s, "t", 3)
        assert s.cancel(tickets[1])
        assert [s.pop().label for _ in range(2)] == ["t-0", "t-2"]
        assert s.depth() == 0

    def test_cancel_twice_is_false(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        (ticket,) = _fill(s, "t", 1)
        assert s.cancel(ticket)
        assert not s.cancel(ticket)

    def test_cancel_unknown_ticket(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        assert not s.cancel(12345)

    def test_fully_cancelled_tenant_leaves_rotation(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        for ticket in _fill(s, "ghost", 3):
            s.cancel(ticket)
        _fill(s, "real", 1)
        assert s.pop().tenant == "real"
        assert s.tenants() == []


class TestIntrospection:
    def test_tenant_depth(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        _fill(s, "a", 2)
        _fill(s, "b", 1)
        assert s.tenant_depth("a") == 2
        assert s.tenant_depth("b") == 1
        assert s.tenant_depth("nobody") == 0
        assert s.depth() == 3

    def test_tenants_lists_pending_only(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        _fill(s, "a", 1)
        _fill(s, "b", 1)
        assert sorted(s.tenants()) == ["a", "b"]
        s.pop()
        s.pop()
        assert s.tenants() == []

    def test_closed_rejects(self):
        s = DeficitRoundRobinScheduler(max_pending=16)
        s.close()
        with pytest.raises(AdmissionError) as exc:
            s.submit(FakeJob("t", "late"))
        assert exc.value.reason == "closed"
