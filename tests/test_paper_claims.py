"""One test per prose claim of the paper's evaluation (§V).

These are the repository's contract with the paper: each test cites the
claim it checks and runs the scaled-down equivalent.  Benchmarks assert
the same properties on the full experiment grid; these are the fast,
always-on versions.
"""

import numpy as np
import pytest

from repro.core import (
    LouvainConfig,
    PAPER_VARIANTS,
    Variant,
    grappolo_louvain,
    run_louvain,
)
from repro.generators import dataset, make_graph
from repro.runtime import CORI_HASWELL, FREE


def scaled_machine(name, g):
    return CORI_HASWELL.scaled(dataset(name).edge_scale_factor(g))


@pytest.fixture(scope="module")
def friendster():
    g = make_graph("soc-friendster", scale="tiny")
    return g, scaled_machine("soc-friendster", g)


class TestSectionV:
    def test_io_is_one_to_two_percent(self, tmp_path):
        """'our overall I/O time is about 1-2% of the overall execution
        time' (§V, Experimental setup)."""
        from repro.core.distlouvain import distributed_louvain
        from repro.graph import DistGraph, EdgeList, write_edgelist
        from repro.runtime import run_spmd

        name = "channel"
        g = make_graph(name, scale="tiny")
        path = str(tmp_path / "g.bin")
        write_edgelist(path, EdgeList.from_csr(g))
        mach = scaled_machine(name, g)

        def prog(comm):
            dg = DistGraph.load_binary(comm, path)
            return distributed_louvain(comm, dg)

        spmd = run_spmd(4, prog, machine=mach, timeout=60.0)
        io_frac = spmd.trace.fraction_by_category().get("io", 0.0)
        assert io_frac < 0.10

    def test_modularity_difference_under_one_percent(self, friendster):
        """'In all these runs, the modularity difference was found to be
        under 1%' — distributed vs shared memory (§V, single node)."""
        g, _ = friendster
        q_dist = run_louvain(g, 1, machine=FREE).modularity
        q_shared = grappolo_louvain(
            g, coloring=False, vertex_following=False
        ).modularity
        assert abs(q_dist - q_shared) / q_shared < 0.01

    def test_distributed_beats_shared_at_scale(self, friendster):
        """'the distributed version obtains a speedup of up to 7x
        compared to the optimized shared-memory version on 64 threads,
        when we scale out' (§V/Table III + Fig. 3)."""
        from repro.runtime import CORI_HASWELL_SHARED

        g, mach = friendster
        shared64 = grappolo_louvain(
            g,
            threads=64,
            machine=CORI_HASWELL_SHARED.scaled(
                dataset("soc-friendster").edge_scale_factor(g)
            ),
        ).elapsed
        dist_scaled = run_louvain(g, 16, machine=mach).elapsed
        # At 16 simulated ranks the distributed code must already be
        # competitive; the full 7x needs the paper's 4K processes.
        assert dist_scaled < shared64 * 8


class TestSectionVA:
    def test_strong_scaling_has_end_points(self):
        """'the process end points of best speedup vary by the input'
        (§V-A): smaller inputs flatten earlier than larger ones."""
        from repro.bench.extrapolate import calibrate

        sweet = {}
        for name in ("channel", "soc-friendster"):
            g = make_graph(name, scale="tiny")
            model = calibrate(g, machine=scaled_machine(name, g))
            sweet[name] = model.sweet_spot(1 << 14)
        assert sweet["channel"] <= sweet["soc-friendster"]

    def test_low_iteration_graphs_scale_worse(self):
        """'some graphs ... have relatively low number of iterations per
        phase, which indicates that there is not enough work' (§V-A).
        Strong-community web crawls settle in far fewer iterations than
        weak-community social graphs (arabic-2005 stands in for the
        structure class; our sk-2005 stand-in's host chains churn more
        than the real crawl)."""
        g_web = make_graph("arabic-2005", scale="tiny")
        g_soc = make_graph("soc-friendster", scale="tiny")
        r_web = run_louvain(g_web, 4, machine=FREE)
        r_soc = run_louvain(g_soc, 4, machine=FREE)
        assert (
            r_web.phases[0].num_iterations
            < r_soc.phases[0].num_iterations
        )


class TestSectionVC:
    def test_threshold_cycling_quality_bound(self):
        """'significant performance benefit with less than 3% decrease
        in modularity for over 90% of the test graphs' (§V-C(a))."""
        names = ("channel", "com-orkut", "arabic-2005", "nlpkkt240")
        ok = 0
        for name in names:
            g = make_graph(name, scale="tiny")
            base = run_louvain(g, 4, machine=FREE)
            tc = run_louvain(
                g, 4, LouvainConfig(variant=Variant.THRESHOLD_CYCLING),
                machine=FREE,
            )
            if tc.modularity >= base.modularity * 0.97:
                ok += 1
        assert ok >= len(names) - 1

    def test_et_speedup_structure_dependent(self):
        """Table I discussion: ET savings are much larger on banded
        (Channel) structures than small-world (CNR) ones."""
        def activity_saved(name):
            g = make_graph(name, scale="tiny")
            r = grappolo_louvain(
                g, LouvainConfig(variant=Variant.ET, alpha=0.75)
            )
            # Fraction of vertex-iterations ET skipped.
            fracs = [it.active_fraction for it in r.iterations]
            return 1.0 - float(np.mean(fracs))

        assert activity_saved("channel") > 0.1
        assert activity_saved("cnr") > 0.0

    def test_etc_within_factor_of_et(self):
        """'we observe early termination with remote communication to be
        around ~1.25-2.3x better than using early termination alone' in
        certain cases (§IV-B(b)); at minimum ETC must not be much worse."""
        g = make_graph("channel", scale="tiny")
        mach = scaled_machine("channel", g)
        et = run_louvain(
            g, 4, LouvainConfig(variant=Variant.ET, alpha=0.75),
            machine=mach,
        )
        etc = run_louvain(
            g, 4, LouvainConfig(variant=Variant.ETC, alpha=0.75),
            machine=mach,
        )
        assert etc.elapsed < et.elapsed * 1.5

    def test_et_tc_combination_not_harmful(self, friendster):
        """Table VI: ET(0.25)+TC gains ~10% over ET(0.25) alone on
        soc-friendster; at this scale we require no regression."""
        g, mach = friendster
        et = run_louvain(
            g, 4, LouvainConfig(variant=Variant.ET, alpha=0.25),
            machine=mach,
        )
        both = run_louvain(
            g, 4, LouvainConfig(variant=Variant.ET_TC, alpha=0.25),
            machine=mach,
        )
        assert both.elapsed < et.elapsed * 1.15


class TestSectionVD:
    def test_lfr_quality_pattern(self):
        """Table VII: high F-score and precision, recall 1.0."""
        from repro.generators import generate_lfr
        from repro.quality import best_match_scores

        lfr = generate_lfr(
            700, mu=0.08, min_community=40, max_community=100, seed=9
        )
        r = run_louvain(lfr.edges.to_csr(), 4, machine=FREE)
        s = best_match_scores(lfr.community_of, r.assignment)
        assert s.recall > 0.99
        assert s.precision > 0.85
        assert s.fscore > 0.9

    def test_distributed_matches_grappolo_fscores(self):
        """'We also observed nearly identical F-score results reported
        by Grappolo for the same LFR benchmark networks' (§V-D)."""
        from repro.generators import generate_lfr
        from repro.quality import best_match_scores

        lfr = generate_lfr(
            600, mu=0.1, min_community=30, max_community=70, seed=4
        )
        g = lfr.edges.to_csr()
        s_dist = best_match_scores(
            lfr.community_of, run_louvain(g, 4, machine=FREE).assignment
        )
        s_shared = best_match_scores(
            lfr.community_of, grappolo_louvain(g).assignment
        )
        assert abs(s_dist.fscore - s_shared.fscore) < 0.1


class TestConclusion:
    def test_every_variant_converges_everywhere(self):
        """§VI: 'Modularities obtained by the different versions of our
        parallel algorithm are in most cases comparable' — no variant
        may collapse on any structure class."""
        for name in ("channel", "com-orkut", "arabic-2005", "cnr"):
            g = make_graph(name, scale="tiny")
            base_q = run_louvain(g, 4, machine=FREE).modularity
            for cfg in PAPER_VARIANTS:
                q = run_louvain(g, 4, cfg, machine=FREE).modularity
                assert q > base_q - 0.1, (name, cfg.label())
