"""Property-based tests for communicator semantics (hypothesis)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import FREE, run_spmd

SIZES = st.integers(min_value=1, max_value=5)
COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(size=SIZES, values=st.lists(st.integers(-1000, 1000), min_size=5, max_size=5))
@settings(**COMMON)
def test_allreduce_equals_python_sum(size, values):
    values = values[:size]

    def prog(comm):
        return comm.allreduce(values[comm.rank])

    r = run_spmd(size, prog, machine=FREE, timeout=10.0)
    assert r.values == [sum(values[:size])] * size


@given(size=st.integers(2, 5), seed=st.integers(0, 2**16))
@settings(**COMMON)
def test_alltoall_is_transpose(size, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 100, (size, size))

    def prog(comm):
        return comm.alltoall(list(matrix[comm.rank]))

    r = run_spmd(size, prog, machine=FREE, timeout=10.0)
    received = np.array(r.values)
    np.testing.assert_array_equal(received, matrix.T)


@given(size=SIZES, values=st.lists(st.integers(0, 100), min_size=5, max_size=5))
@settings(**COMMON)
def test_scan_prefix_property(size, values):
    values = values[:size]

    def prog(comm):
        return comm.scan(values[comm.rank]), comm.exscan(values[comm.rank])

    r = run_spmd(size, prog, machine=FREE, timeout=10.0)
    for rank, (inc, exc) in enumerate(r.values):
        assert inc == sum(values[: rank + 1])
        assert exc == sum(values[:rank])
        assert inc == exc + values[rank]


@given(size=st.integers(2, 5), seed=st.integers(0, 2**16))
@settings(**COMMON)
def test_gather_scatter_inverse(size, seed):
    rng = np.random.default_rng(seed)
    data = [int(x) for x in rng.integers(0, 1000, size)]

    def prog(comm):
        g = comm.gather(data[comm.rank], root=0)
        return comm.scatter(g, root=0)

    r = run_spmd(size, prog, machine=FREE, timeout=10.0)
    assert r.values == data


@given(size=st.integers(2, 5), nmsg=st.integers(1, 8))
@settings(**COMMON)
def test_p2p_preserves_order_and_content(size, nmsg):
    def prog(comm):
        nxt = (comm.rank + 1) % comm.size
        prv = (comm.rank - 1) % comm.size
        for i in range(nmsg):
            comm.send((comm.rank, i), nxt)
        got = [comm.recv(prv) for _ in range(nmsg)]
        return got

    r = run_spmd(size, prog, machine=FREE, timeout=10.0)
    for rank in range(size):
        prv = (rank - 1) % size
        assert r.values[rank] == [(prv, i) for i in range(nmsg)]


@given(size=SIZES, payload_len=st.integers(0, 50))
@settings(**COMMON)
def test_bcast_replicates_exactly(size, payload_len):
    payload = np.arange(payload_len)

    def prog(comm):
        got = comm.bcast(payload if comm.rank == 0 else None, root=0)
        return int(got.sum())

    r = run_spmd(size, prog, machine=FREE, timeout=10.0)
    assert r.values == [int(payload.sum())] * size


@given(size=st.integers(1, 5), ops=st.integers(0, 10**6))
@settings(**COMMON)
def test_clocks_nonnegative_and_monotone(size, ops):
    from repro.runtime import CORI_HASWELL

    def prog(comm):
        t0 = comm.clock
        comm.charge_compute(ops)
        comm.allreduce(1)
        return comm.clock >= t0 >= 0.0

    r = run_spmd(size, prog, machine=CORI_HASWELL, timeout=10.0)
    assert all(r.values)
