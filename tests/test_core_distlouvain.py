"""Unit tests for the distributed Louvain algorithm (Algorithms 2-4)."""

import numpy as np
import pytest

from repro.core import LouvainConfig, Variant, louvain, modularity, run_louvain
from repro.graph import EdgeList
from repro.runtime import CORI_HASWELL, FREE

from .conftest import assert_valid_partition, planted_blocks_graph


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 8])
    def test_planted_blocks_all_p(self, planted_blocks, nranks):
        r = run_louvain(planted_blocks, nranks, machine=FREE)
        assert r.num_communities == 8
        assert r.modularity > 0.8
        assert_valid_partition(r.assignment, 200)

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_two_cliques(self, two_cliques, nranks):
        r = run_louvain(two_cliques, nranks, machine=FREE)
        assert r.modularity == pytest.approx(0.45238095, abs=1e-6)
        assert r.num_communities == 2

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_karate(self, karate, nranks):
        r = run_louvain(karate, nranks, machine=FREE)
        assert 0.38 <= r.modularity <= 0.43

    def test_reported_q_matches_assignment(self, planted_blocks):
        r = run_louvain(planted_blocks, 4, machine=FREE)
        assert modularity(planted_blocks, r.assignment) == pytest.approx(
            r.modularity, abs=1e-9
        )

    def test_quality_close_to_serial(self, planted_blocks):
        serial = louvain(planted_blocks)
        for p in (2, 4, 8):
            dist = run_louvain(planted_blocks, p, machine=FREE)
            assert dist.modularity >= serial.modularity - 0.03

    @pytest.mark.parametrize("partition", ["even_vertex", "even_edge"])
    def test_partition_strategies(self, planted_blocks, partition):
        r = run_louvain(
            planted_blocks, 4, machine=FREE, partition=partition
        )
        assert r.modularity > 0.8

    def test_more_ranks_than_vertices(self):
        g = planted_blocks_graph(
            blocks=2, per_block=4, p_in=1.0, inter_edges=1, seed=0
        )
        r = run_louvain(g, 12, machine=FREE)
        assert_valid_partition(r.assignment, 8)
        assert r.modularity > 0.3
        assert r.num_communities == 2

    def test_disconnected_graph(self):
        g = EdgeList.from_arrays(
            8, [0, 1, 2, 4, 5, 6], [1, 2, 3, 5, 6, 7]
        ).to_csr()
        r = run_louvain(g, 3, machine=FREE)
        assert r.num_communities >= 2
        assert r.modularity > 0.3

    def test_graph_with_isolated_vertices(self):
        g = EdgeList.from_arrays(6, [0, 1], [1, 2]).to_csr()
        r = run_louvain(g, 2, machine=FREE)
        assert_valid_partition(r.assignment, 6)

    def test_weighted_graph(self):
        g = EdgeList.from_arrays(
            6, [0, 1, 2, 3, 4, 0], [1, 2, 3, 4, 5, 3],
            [5.0, 5.0, 0.1, 5.0, 5.0, 0.1],
        ).to_csr()
        r = run_louvain(g, 2, machine=FREE)
        assert r.assignment[0] == r.assignment[1] == r.assignment[2]
        assert r.assignment[3] == r.assignment[4] == r.assignment[5]


class TestVariants:
    @pytest.mark.parametrize(
        "variant,alpha",
        [
            (Variant.ET, 0.25),
            (Variant.ET, 0.75),
            (Variant.ETC, 0.25),
            (Variant.ETC, 0.75),
            (Variant.THRESHOLD_CYCLING, 0.25),
            (Variant.ET_TC, 0.25),
        ],
    )
    def test_all_variants_reach_good_quality(
        self, planted_blocks, variant, alpha
    ):
        cfg = LouvainConfig(variant=variant, alpha=alpha)
        r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
        assert r.modularity > 0.75
        assert_valid_partition(r.assignment, 200)

    def test_et_reduces_active_fraction(self, planted_blocks):
        cfg = LouvainConfig(variant=Variant.ET, alpha=0.75)
        r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
        assert min(it.active_fraction for it in r.iterations) < 1.0

    def test_etc_tracks_global_inactive(self, planted_blocks):
        cfg = LouvainConfig(variant=Variant.ETC, alpha=0.75)
        r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
        fracs = [it.inactive_fraction for it in r.iterations]
        assert max(fracs) > 0.0

    def test_etc_exit_flag_set_when_triggered(self, planted_blocks):
        cfg = LouvainConfig(
            variant=Variant.ETC, alpha=0.95, etc_exit_fraction=0.5
        )
        r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
        assert any(p.exited_by_inactive for p in r.phases)

    def test_neighbor_collectives_same_result(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        neigh = run_louvain(
            planted_blocks,
            4,
            LouvainConfig(use_neighbor_collectives=True),
            machine=FREE,
        )
        np.testing.assert_array_equal(base.assignment, neigh.assignment)
        assert base.modularity == neigh.modularity


class TestTiming:
    def test_elapsed_and_trace_populated(self, planted_blocks):
        r = run_louvain(planted_blocks, 4, machine=CORI_HASWELL)
        assert r.elapsed > 0
        cats = r.trace.seconds_by_category()
        for cat in ("compute", "ghost_comm", "community_comm", "allreduce"):
            assert cats.get(cat, 0) > 0, cat

    def test_deterministic_including_time(self, planted_blocks):
        r1 = run_louvain(planted_blocks, 4, machine=CORI_HASWELL)
        r2 = run_louvain(planted_blocks, 4, machine=CORI_HASWELL)
        np.testing.assert_array_equal(r1.assignment, r2.assignment)
        assert r1.elapsed == r2.elapsed

    def test_et_faster_than_baseline(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=CORI_HASWELL)
        et = run_louvain(
            planted_blocks,
            4,
            LouvainConfig(variant=Variant.ET, alpha=0.75),
            machine=CORI_HASWELL,
        )
        # ET processes fewer vertices; its modelled time per unit of
        # quality should not exceed baseline by much.  (Exact speedup is
        # graph-dependent; assert the compute trace shrank.)
        assert (
            et.trace.seconds_by_category()["compute"]
            < base.trace.seconds_by_category()["compute"] * 1.2
        )


class TestStatsTracking:
    def test_phase_graph_sizes_shrink(self, planted_blocks):
        r = run_louvain(planted_blocks, 4, machine=FREE)
        sizes = [p.num_vertices for p in r.phases]
        assert sizes[0] == 200
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_iteration_series_nonempty(self, planted_blocks):
        r = run_louvain(planted_blocks, 4, machine=FREE)
        assert r.total_iterations == len(r.iterations)
        assert r.iterations[0].phase == 0

    def test_track_assignments_gathers_to_root(self, two_cliques):
        cfg = LouvainConfig(track_assignments=True)
        r = run_louvain(two_cliques, 2, cfg, machine=FREE)
        assert r.phase_assignments is not None
        assert len(r.phase_assignments) == r.num_phases
        for pa in r.phase_assignments:
            assert len(pa) == 10

    def test_max_phases_cap(self, planted_blocks):
        cfg = LouvainConfig(max_phases=1)
        r = run_louvain(planted_blocks, 4, cfg, machine=FREE)
        assert r.num_phases == 1
