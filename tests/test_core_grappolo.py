"""Unit tests for the Grappolo-style shared-memory implementation."""

import numpy as np
import pytest

from repro.core import (
    LouvainConfig,
    Variant,
    grappolo_louvain,
    greedy_coloring,
    louvain,
    modularity,
    vertex_following_seed,
)
from repro.graph import CSRGraph

from .conftest import assert_valid_partition


class TestGreedyColoring:
    def test_proper_coloring(self, planted_blocks):
        colors = greedy_coloring(planted_blocks)
        rows = np.repeat(
            np.arange(planted_blocks.num_vertices),
            np.diff(planted_blocks.index),
        )
        non_loop = rows != planted_blocks.edges
        assert np.all(
            colors[rows[non_loop]] != colors[planted_blocks.edges[non_loop]]
        )

    def test_color_count_bounded_by_max_degree(self, karate):
        colors = greedy_coloring(karate)
        assert colors.max() <= karate.edge_counts().max()

    def test_path_two_colors(self, path_graph):
        assert greedy_coloring(path_graph).max() <= 1

    def test_empty(self):
        assert len(greedy_coloring(CSRGraph.empty(0))) == 0


class TestVectorisedKernelEquivalence:
    """The numpy segment-op kernels must match the reference scans exactly."""

    def _random_graph(self, seed, n=80):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(0, 4 * n))
        from repro.graph import EdgeList

        return EdgeList.from_arrays(
            n, rng.integers(0, n, m), rng.integers(0, n, m)
        ).to_csr()

    @pytest.mark.parametrize("seed", range(8))
    def test_coloring_matches_reference_loop(self, seed):
        from repro.core.grappolo import _greedy_coloring_loop

        g = self._random_graph(seed)
        np.testing.assert_array_equal(
            greedy_coloring(g), _greedy_coloring_loop(g)
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_vertex_following_matches_reference_loop(self, seed):
        from repro.core.grappolo import _vertex_following_loop

        g = self._random_graph(seed)
        np.testing.assert_array_equal(
            vertex_following_seed(g), _vertex_following_loop(g)
        )

    def test_coloring_sequential_chain(self, path_graph):
        # Worst-case wave depth: every vertex waits on its predecessor.
        from repro.core.grappolo import _greedy_coloring_loop

        np.testing.assert_array_equal(
            greedy_coloring(path_graph), _greedy_coloring_loop(path_graph)
        )

    def test_isolated_edges_follow_to_larger_id(self):
        from repro.core.grappolo import _vertex_following_loop

        g = CSRGraph.from_edges(
            4, [0, 1, 2, 3], [1, 0, 3, 2], [1.0] * 4
        )
        comm = vertex_following_seed(g)
        np.testing.assert_array_equal(comm, [1, 1, 3, 3])
        np.testing.assert_array_equal(comm, _vertex_following_loop(g))


class TestVertexFollowing:
    def test_leaf_follows_neighbor(self, star_graph):
        comm = vertex_following_seed(star_graph)
        # All leaves follow the hub.
        assert np.all(comm[1:] == comm[0])

    def test_non_leaves_untouched(self, two_cliques):
        comm = vertex_following_seed(two_cliques)
        np.testing.assert_array_equal(comm, np.arange(10))

    def test_self_loop_vertex_not_followed(self):
        # Meta-vertex with a self loop and one neighbour: has internal
        # structure, must stay in its own community.
        g = CSRGraph.from_edges(2, [0, 0], [0, 1], [5.0, 1.0])
        comm = vertex_following_seed(g)
        assert comm[0] == 0


class TestGrappoloQuality:
    @pytest.mark.parametrize("coloring", [True, False])
    @pytest.mark.parametrize("vf", [True, False])
    def test_two_cliques_all_modes(self, two_cliques, coloring, vf):
        r = grappolo_louvain(
            two_cliques, coloring=coloring, vertex_following=vf
        )
        assert r.modularity == pytest.approx(0.45238095, abs=1e-6)
        assert r.num_communities == 2

    def test_karate(self, karate):
        r = grappolo_louvain(karate)
        assert 0.38 <= r.modularity <= 0.43
        assert_valid_partition(r.assignment, 34)

    def test_matches_serial_on_planted_blocks(self, planted_blocks):
        serial = louvain(planted_blocks)
        par = grappolo_louvain(planted_blocks)
        assert par.modularity == pytest.approx(serial.modularity, abs=0.02)
        assert par.num_communities == serial.num_communities

    def test_reported_q_matches_assignment(self, planted_blocks):
        r = grappolo_louvain(planted_blocks)
        assert modularity(planted_blocks, r.assignment) == pytest.approx(
            r.modularity, abs=1e-9
        )

    def test_coloring_converges_in_fewer_iterations(self, planted_blocks):
        colored = grappolo_louvain(planted_blocks, coloring=True)
        plain = grappolo_louvain(planted_blocks, coloring=False)
        assert colored.total_iterations <= plain.total_iterations

    def test_deterministic(self, planted_blocks):
        r1 = grappolo_louvain(planted_blocks)
        r2 = grappolo_louvain(planted_blocks)
        np.testing.assert_array_equal(r1.assignment, r2.assignment)
        assert r1.elapsed == r2.elapsed


class TestGrappoloTiming:
    def test_elapsed_positive(self, planted_blocks):
        assert grappolo_louvain(planted_blocks).elapsed > 0

    def test_more_threads_faster(self, planted_blocks):
        t4 = grappolo_louvain(planted_blocks, threads=4).elapsed
        t32 = grappolo_louvain(planted_blocks, threads=32).elapsed
        assert t32 < t4

    def test_table3_shared_scaling_shape(self, planted_blocks):
        # Table III: shared memory scales ~2.2x from 4 to 64 threads.
        t4 = grappolo_louvain(planted_blocks, threads=4).elapsed
        t64 = grappolo_louvain(planted_blocks, threads=64).elapsed
        assert 1.5 < t4 / t64 < 3.5


class TestGrappoloVariants:
    def test_et_runs_and_reports_activity(self, planted_blocks):
        cfg = LouvainConfig(variant=Variant.ET, alpha=0.75)
        r = grappolo_louvain(planted_blocks, cfg)
        assert r.modularity > 0.7
        fracs = [it.active_fraction for it in r.iterations]
        assert min(fracs) < 1.0  # some vertices went inactive

    def test_etc_flags_exit(self, planted_blocks):
        cfg = LouvainConfig(variant=Variant.ETC, alpha=0.9)
        r = grappolo_louvain(planted_blocks, cfg)
        assert r.modularity > 0.7

    def test_higher_alpha_fewer_active(self, planted_blocks):
        lo = grappolo_louvain(
            planted_blocks, LouvainConfig(variant=Variant.ET, alpha=0.25)
        )
        hi = grappolo_louvain(
            planted_blocks, LouvainConfig(variant=Variant.ET, alpha=0.75)
        )
        mean_lo = np.mean([it.active_fraction for it in lo.iterations])
        mean_hi = np.mean([it.active_fraction for it in hi.iterations])
        assert mean_hi < mean_lo
