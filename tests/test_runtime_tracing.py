"""Unit tests for tracing: counters, category charges, reports."""

import pytest

from repro.runtime.tracing import RankTrace, TraceReport


class TestRankTrace:
    def test_charge_accumulates(self):
        t = RankTrace(rank=0)
        t.charge("compute", 1.0)
        t.charge("compute", 0.5)
        t.charge("allreduce", 2.0)
        assert t.seconds["compute"] == pytest.approx(1.5)
        assert t.total_seconds == pytest.approx(3.5)

    def test_negative_charge_rejected(self):
        t = RankTrace(rank=0)
        with pytest.raises(ValueError):
            t.charge("compute", -0.1)

    def test_message_counters(self):
        t = RankTrace(rank=1)
        t.record_send(100)
        t.record_send(50)
        t.record_recv(100)
        assert t.messages_sent == 2
        assert t.bytes_sent == 150
        assert t.messages_received == 1

    def test_collective_counter(self):
        t = RankTrace(rank=0)
        t.record_collective("allreduce")
        t.record_collective("allreduce")
        t.record_collective("barrier")
        assert t.collectives["allreduce"] == 2


class TestTraceReport:
    def _make(self):
        t0, t1 = RankTrace(rank=0), RankTrace(rank=1)
        t0.charge("compute", 3.0)
        t0.charge("allreduce", 1.0)
        t1.charge("compute", 1.0)
        t1.charge("ghost_comm", 1.0)
        t0.record_send(100)
        t1.record_send(200)
        t0.record_collective("allreduce")
        return TraceReport.merge([t1, t0])

    def test_merge_sorts_by_rank(self):
        rep = self._make()
        assert [t.rank for t in rep.ranks] == [0, 1]

    def test_seconds_by_category(self):
        rep = self._make()
        s = rep.seconds_by_category()
        assert s["compute"] == pytest.approx(4.0)
        assert s["allreduce"] == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        rep = self._make()
        assert sum(rep.fraction_by_category().values()) == pytest.approx(1.0)

    def test_fractions_empty_trace(self):
        rep = TraceReport.merge([RankTrace(rank=0)])
        assert rep.fraction_by_category() == {}

    def test_total_messages_and_bytes(self):
        rep = self._make()
        assert rep.total_messages == 2
        assert rep.total_bytes == 300

    def test_format_contains_categories(self):
        text = self._make().format()
        assert "compute" in text
        assert "ghost_comm" in text
        assert "messages=2" in text


class TestCategories:
    def test_checkpoint_category_registered(self):
        from repro.runtime.tracing import CATEGORIES

        assert "checkpoint" in CATEGORIES

    def test_checkpointed_run_report_includes_checkpoint(self, tmp_path):
        from tests.conftest import planted_blocks_graph
        from repro.core import LouvainConfig, run_louvain

        g = planted_blocks_graph(
            blocks=3, per_block=8, p_in=0.8, inter_edges=6, seed=1
        )
        res = run_louvain(
            g, 2, LouvainConfig(seed=0), checkpoint_dir=str(tmp_path / "ck")
        )
        assert res.trace.seconds_by_category().get("checkpoint", 0.0) > 0.0
        assert "checkpoint" in res.trace.format()
