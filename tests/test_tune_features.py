"""Unit tests for the graph featurizer (repro.tune.features)."""

import math

import pytest

from repro.generators import make_graph
from repro.tune import GraphFeatures, compute_features, feature_distance
from repro.tune.features import DEFAULT_GHOST_PROBES


@pytest.fixture(scope="module")
def channel():
    return make_graph("channel", scale="tiny", seed=0)


class TestComputeFeatures:
    def test_basic_counts(self, channel):
        f = compute_features(channel)
        assert f.num_vertices == channel.num_vertices
        assert f.num_edges == channel.num_edges
        assert f.mean_degree == pytest.approx(
            2 * channel.num_edges / channel.num_vertices
        )

    def test_probes_cover_defaults(self, channel):
        f = compute_features(channel)
        assert set(f.ghost_fraction) == set(DEFAULT_GHOST_PROBES)
        for p, frac in f.ghost_fraction.items():
            assert 0.0 <= frac <= 1.0, (p, frac)

    def test_ghost_fraction_grows_with_ranks(self, channel):
        f = compute_features(channel)
        fracs = [f.ghost_fraction_at(p) for p in DEFAULT_GHOST_PROBES]
        assert fracs == sorted(fracs)

    def test_single_rank_has_no_ghosts(self, channel):
        f = compute_features(channel)
        assert f.ghost_fraction_at(1) == 0.0

    def test_unprobed_rank_count_snaps_to_nearest(self, channel):
        f = compute_features(channel)
        # 6 ranks is between probes 4 and 8; the answer must be one of them.
        assert f.ghost_fraction_at(6) in (
            f.ghost_fraction_at(4), f.ghost_fraction_at(8),
        )

    def test_regular_graph_has_low_cv(self, two_cliques):
        f = compute_features(two_cliques)
        assert f.degree_cv < 0.25

    def test_deterministic(self, channel):
        assert compute_features(channel) == compute_features(channel)


class TestSerialization:
    def test_round_trip(self, channel):
        f = compute_features(channel)
        again = GraphFeatures.from_dict(f.to_dict())
        assert again == f

    def test_json_safe(self, channel):
        import json

        blob = json.dumps(compute_features(channel).to_dict())
        assert "ghost_fraction" in blob


class TestDistance:
    def test_self_distance_zero(self, channel):
        f = compute_features(channel)
        assert feature_distance(f, f) == 0.0

    def test_symmetric(self, channel, two_cliques):
        a = compute_features(channel)
        b = compute_features(two_cliques)
        assert feature_distance(a, b) == pytest.approx(
            feature_distance(b, a)
        )

    def test_similar_graphs_closer_than_different(self):
        a = compute_features(make_graph("channel", scale="tiny", seed=0))
        b = compute_features(make_graph("channel", scale="tiny", seed=3))
        c = compute_features(make_graph("com-orkut", scale="tiny", seed=0))
        assert feature_distance(a, b) < feature_distance(a, c)

    def test_vector_is_finite(self, channel):
        assert all(math.isfinite(x) for x in compute_features(channel).vector())


class TestDegreeOneFraction:
    def test_star_is_mostly_leaves(self, star_graph):
        f = compute_features(star_graph)
        assert f.degree_one_fraction == pytest.approx(8 / 9)

    def test_clique_has_no_leaves(self, two_cliques):
        assert compute_features(two_cliques).degree_one_fraction == 0.0

    def test_round_trips(self, channel):
        f = compute_features(channel)
        restored = GraphFeatures.from_dict(f.to_dict())
        assert restored.degree_one_fraction == f.degree_one_fraction

    def test_v3_records_default_to_zero(self, channel):
        legacy = compute_features(channel).to_dict()
        del legacy["degree_one_fraction"]
        assert GraphFeatures.from_dict(legacy).degree_one_fraction == 0.0

    def test_in_vector_and_format(self, star_graph):
        f = compute_features(star_graph)
        assert any(v == pytest.approx(8 / 9) for v in f.vector())
        assert "leaf=0.89" in f.format()
