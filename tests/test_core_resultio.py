"""Unit tests for result persistence."""

import numpy as np
import pytest

from repro.core import louvain
from repro.core.resultio import (
    load_result,
    read_communities_text,
    save_result,
    write_communities_text,
)


class TestNpzRoundtrip:
    def test_roundtrip_preserves_result(self, tmp_path, planted_blocks):
        r = louvain(planted_blocks)
        r.elapsed = 1.25
        path = tmp_path / "r.npz"
        save_result(path, r)
        r2 = load_result(path)
        np.testing.assert_array_equal(r.assignment, r2.assignment)
        assert r2.modularity == r.modularity
        assert r2.elapsed == 1.25
        assert len(r2.phases) == r.num_phases
        assert r2.phases[0].num_vertices == 200

    def test_phase_metadata_preserved(self, tmp_path, two_cliques):
        r = louvain(two_cliques)
        path = tmp_path / "r.npz"
        save_result(path, r)
        r2 = load_result(path)
        for a, b in zip(r.phases, r2.phases):
            assert a.tau == b.tau
            assert a.num_iterations == b.num_iterations
            assert a.modularity == b.modularity


class TestCommunitiesText:
    def test_roundtrip(self, tmp_path):
        a = np.array([0, 0, 1, 2, 1], dtype=np.int64)
        path = tmp_path / "c.txt"
        write_communities_text(path, a)
        np.testing.assert_array_equal(read_communities_text(path), a)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n0 5\n1 5\n")
        out = read_communities_text(path)
        np.testing.assert_array_equal(out, [5, 5])

    def test_missing_vertex_rejected(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("0 1\n2 1\n")  # vertex 1 missing
        with pytest.raises(ValueError, match="vertex 1"):
            read_communities_text(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="expected"):
            read_communities_text(path)

    def test_empty(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("")
        assert len(read_communities_text(path)) == 0


class TestFormatVersion:
    def test_version_written(self, tmp_path, two_cliques):
        import json

        r = louvain(two_cliques)
        path = tmp_path / "r.npz"
        save_result(path, r)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
        from repro.core.resultio import RESULT_FORMAT_VERSION

        assert meta["format_version"] == RESULT_FORMAT_VERSION

    def test_legacy_unversioned_file_accepted(self, tmp_path, two_cliques):
        # Files written before the format_version field existed load as v1.
        import json

        r = louvain(two_cliques)
        path = tmp_path / "r.npz"
        meta = {"modularity": r.modularity, "elapsed": 0.0, "phases": []}
        np.savez_compressed(
            path, assignment=r.assignment, meta=np.array(json.dumps(meta))
        )
        r2 = load_result(path)
        assert r2.modularity == r.modularity

    def test_future_version_rejected(self, tmp_path, two_cliques):
        import json

        r = louvain(two_cliques)
        path = tmp_path / "r.npz"
        meta = {
            "format_version": 999,
            "modularity": r.modularity,
            "elapsed": 0.0,
            "phases": [],
        }
        np.savez_compressed(
            path, assignment=r.assignment, meta=np.array(json.dumps(meta))
        )
        with pytest.raises(ValueError, match="version 999"):
            load_result(path)


class TestAtomicSave:
    def test_no_temp_files_left_behind(self, tmp_path, two_cliques):
        r = louvain(two_cliques)
        save_result(tmp_path / "r.npz", r)
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name != "r.npz"
        ]
        assert leftovers == []

    def test_suffix_appended_like_numpy(self, tmp_path, two_cliques):
        # np.savez appends .npz to suffixless paths; the atomic writer
        # must match so callers see the same on-disk name either way.
        r = louvain(two_cliques)
        save_result(tmp_path / "bare", r)
        assert (tmp_path / "bare.npz").exists()
        r2 = load_result(tmp_path / "bare.npz")
        np.testing.assert_array_equal(r.assignment, r2.assignment)
