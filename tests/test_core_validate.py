"""Unit tests for the distributed state auditors (and via them, the
internal consistency of the Louvain iteration machinery)."""

import numpy as np
import pytest

from repro.core.distlouvain import (
    _GhostChannel,
    louvain_phase_distributed,
)
from repro.core import LouvainConfig
from repro.core.validate import (
    AuditReport,
    audit_community_info,
    audit_ghost_coherence,
    audit_partition,
)
from repro.graph import DistGraph
from repro.runtime import FREE, run_spmd

from .conftest import planted_blocks_graph


class TestAuditReport:
    def test_record_failure(self):
        r = AuditReport()
        r.record(True, "fine")
        assert r.ok
        r.record(False, "broken")
        assert not r.ok
        assert r.failures == ["broken"]

    def test_raise_if_failed(self):
        r = AuditReport()
        r.record(False, "oops")
        with pytest.raises(AssertionError, match="oops"):
            r.raise_if_failed()
        AuditReport().raise_if_failed()  # no-op when clean


class TestAuditsOnLiveState:
    """Run a real phase, then audit the final state."""

    def _audit_after_phase(self, g, nranks):
        def prog(comm):
            dg = DistGraph.distribute(comm, g)
            config = LouvainConfig()
            out = louvain_phase_distributed(comm, dg, 1e-6, config, 0)
            # Recompute owned C_info the same way the phase did, from
            # scratch, for the audit comparison.
            k = dg.local_degrees()
            tot = k.copy()
            size = np.ones(dg.num_local, dtype=np.int64)
            # Replay the moves as one batch of deltas (ground truth is
            # recomputed inside the audit anyway).
            from repro.core.distlouvain import _apply_community_deltas

            start = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            moved = out.local_comm != start
            _apply_community_deltas(
                comm, dg,
                old=start[moved], new=out.local_comm[moved],
                deg=k[moved], tot_owned=tot, size_owned=size,
            )
            r1 = audit_community_info(comm, dg, out.local_comm, tot, size)
            r2 = audit_partition(comm, dg, out.local_comm)
            r3 = audit_ghost_coherence(
                comm, dg, out.local_comm, out.ghost_comm
            )
            return r1.ok, r2.ok, r3.ok, r1.failures + r2.failures + r3.failures

        r = run_spmd(nranks, prog, machine=FREE, timeout=60.0)
        return r.values

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_phase_leaves_consistent_state(self, nranks):
        g = planted_blocks_graph(blocks=4, per_block=12, seed=4)
        for ok1, ok2, ok3, failures in self._audit_after_phase(g, nranks):
            assert ok1 and ok2 and ok3, failures


class TestAuditsCatchCorruption:
    def test_community_info_mismatch_detected(self, planted_blocks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            local_comm = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            tot = dg.local_degrees()
            size = np.ones(dg.num_local, dtype=np.int64)
            if comm.rank == 0 and dg.num_local:
                tot[0] += 99.0  # corrupt one owner entry
            return audit_community_info(
                comm, dg, local_comm, tot, size
            )

        r = run_spmd(3, prog, machine=FREE, timeout=30.0)
        for report in r.values:
            assert not report.ok
            assert any("a_c mismatch" in f for f in report.failures)

    def test_size_mismatch_detected(self, planted_blocks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            local_comm = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            tot = dg.local_degrees()
            size = np.ones(dg.num_local, dtype=np.int64)
            if comm.rank == comm.size - 1 and dg.num_local:
                size[-1] = 7
            return audit_community_info(comm, dg, local_comm, tot, size)

        r = run_spmd(2, prog, machine=FREE, timeout=30.0)
        assert all(not rep.ok for rep in r.values)

    def test_ghost_staleness_detected(self, planted_blocks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            plan = dg.build_ghost_plan(comm)
            local_comm = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            ghost = dg.exchange_ghost_values(comm, plan, local_comm)
            # Now move a vertex without telling anyone.
            if dg.num_local:
                local_comm = local_comm.copy()
                local_comm[0] = int(local_comm[-1])
            return audit_ghost_coherence(comm, dg, local_comm, ghost)

        r = run_spmd(4, prog, machine=FREE, timeout=30.0)
        # At least one rank ghosts the moved vertex, so the global audit
        # fails everywhere (reports are replicated).
        assert all(not rep.ok for rep in r.values)

    def test_weight_drift_detected(self, planted_blocks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            corrupted = DistGraph(
                offsets=dg.offsets,
                rank=dg.rank,
                index=dg.index,
                edges=dg.edges,
                weights=dg.weights,
                total_weight=dg.total_weight + 100.0,
            )
            local_comm = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            return audit_partition(comm, corrupted, local_comm)

        r = run_spmd(2, prog, machine=FREE, timeout=30.0)
        assert all(not rep.ok for rep in r.values)
        assert any(
            "weight drift" in f for f in r.values[0].failures
        )


class TestGhostChannelDeltaCoherence:
    """The delta transport must keep ghosts coherent across many rounds."""

    def test_delta_stays_coherent(self, planted_blocks):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            plan = dg.build_ghost_plan(comm)
            config = LouvainConfig(ghost_delta_updates=True)
            chan = _GhostChannel(dg, plan, config)
            rng = np.random.default_rng(comm.rank)
            local_comm = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            oks = []
            for _ in range(5):
                # Random churn of local assignments.
                if dg.num_local:
                    idx = rng.integers(0, dg.num_local, 3)
                    local_comm = local_comm.copy()
                    local_comm[idx] = rng.integers(
                        0, dg.num_global_vertices, 3
                    )
                ghost = chan.refresh(comm, local_comm)
                rep = audit_ghost_coherence(comm, dg, local_comm, ghost)
                oks.append(rep.ok)
            return all(oks)

        r = run_spmd(4, prog, machine=FREE, timeout=60.0)
        assert all(r.values)


class TestMisalignedGhostAudit:
    """Regression: a ghost array misaligned on ONE rank used to make that
    rank return early from audit_ghost_coherence, skipping the
    remote_lookup collectives the healthy ranks were entering (schedule
    divergence -> deadlock on real MPI).  The decision is now collective;
    the audit must complete on every rank and fail everywhere."""

    def test_single_rank_misalignment_fails_collectively(
        self, planted_blocks
    ):
        def prog(comm):
            dg = DistGraph.distribute(comm, planted_blocks)
            plan = dg.build_ghost_plan(comm)
            local_comm = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
            ghost = dg.exchange_ghost_values(comm, plan, local_comm)
            if comm.rank == 1:
                ghost = ghost[:-1]  # drop one entry on this rank only
            return audit_ghost_coherence(comm, dg, local_comm, ghost)

        # verify_schedule makes any residual collective divergence fail
        # fast with a localized error instead of a timeout.
        r = run_spmd(2, prog, machine=FREE, timeout=30.0,
                     verify_schedule=True)
        assert all(not rep.ok for rep in r.values)
        for rep in r.values:  # merge_global replicates the failure list
            assert any("misaligned" in f for f in rep.failures)
