"""Unit tests for the service priority scheduler and admission control."""

import threading

import pytest

from repro.service import AdmissionError, PriorityScheduler


class TestPriorityOrder:
    def test_higher_priority_pops_first(self):
        s = PriorityScheduler(max_pending=8)
        s.submit("low", priority=0)
        s.submit("high", priority=5)
        s.submit("mid", priority=2)
        assert s.pop() == "high"
        assert s.pop() == "mid"
        assert s.pop() == "low"

    def test_fifo_within_priority_level(self):
        s = PriorityScheduler(max_pending=16)
        for i in range(10):
            s.submit(f"job-{i}", priority=1)
        assert [s.pop() for _ in range(10)] == [f"job-{i}" for i in range(10)]

    def test_interleaved_levels_stay_fifo(self):
        s = PriorityScheduler(max_pending=16)
        s.submit("a0", priority=0)
        s.submit("b1", priority=1)
        s.submit("c0", priority=0)
        s.submit("d1", priority=1)
        assert [s.pop() for _ in range(4)] == ["b1", "d1", "a0", "c0"]

    def test_negative_priority_sorts_last(self):
        s = PriorityScheduler(max_pending=8)
        s.submit("background", priority=-1)
        s.submit("normal", priority=0)
        assert s.pop() == "normal"
        assert s.pop() == "background"


class TestAdmissionControl:
    def test_full_queue_rejected_with_reason(self):
        s = PriorityScheduler(max_pending=2)
        s.submit("a")
        s.submit("b")
        with pytest.raises(AdmissionError) as exc:
            s.submit("c")
        assert exc.value.reason == "queue-full"
        assert "2" in str(exc.value)

    def test_pop_frees_capacity(self):
        s = PriorityScheduler(max_pending=1)
        s.submit("a")
        assert s.pop() == "a"
        s.submit("b")  # must not raise
        assert s.depth() == 1

    def test_closed_queue_rejected(self):
        s = PriorityScheduler(max_pending=4)
        s.close()
        with pytest.raises(AdmissionError) as exc:
            s.submit("a")
        assert exc.value.reason == "closed"

    def test_high_priority_not_exempt_from_backpressure(self):
        s = PriorityScheduler(max_pending=1)
        s.submit("a", priority=0)
        with pytest.raises(AdmissionError):
            s.submit("urgent", priority=100)


class TestCancel:
    def test_cancelled_ticket_never_pops(self):
        s = PriorityScheduler(max_pending=8)
        t1 = s.submit("a")
        s.submit("b")
        assert s.cancel(t1)
        assert s.pop() == "b"
        assert s.pop(timeout=0.01) is None

    def test_cancel_frees_capacity(self):
        s = PriorityScheduler(max_pending=1)
        t = s.submit("a")
        s.cancel(t)
        s.submit("b")  # must not raise
        assert s.pop() == "b"

    def test_cancel_unknown_ticket_is_false(self):
        s = PriorityScheduler(max_pending=4)
        t = s.submit("a")
        assert s.pop() == "a"
        assert not s.cancel(t)


class TestPopBlocking:
    def test_pop_timeout_returns_none(self):
        s = PriorityScheduler(max_pending=4)
        assert s.pop(timeout=0.02) is None

    def test_pop_wakes_on_submit(self):
        s = PriorityScheduler(max_pending=4)
        got = []

        def consumer():
            got.append(s.pop(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        s.submit("wake")
        t.join(timeout=5.0)
        assert got == ["wake"]

    def test_close_drains_then_none(self):
        s = PriorityScheduler(max_pending=4)
        s.submit("last")
        s.close()
        assert s.pop() == "last"
        assert s.pop() is None
