"""Unit tests for modularity (Equation 2) and exact move gains."""

import numpy as np
import pytest

from repro.core import community_aggregates, modularity, move_gain
from repro.graph import CSRGraph, EdgeList

nx = pytest.importorskip("networkx")


def nx_modularity(g: CSRGraph, assignment) -> float:
    G = nx.Graph()
    G.add_nodes_from(range(g.num_vertices))
    for u, v, w in g.iter_edges():
        G.add_edge(u, v, weight=w)
    parts = {}
    for i, c in enumerate(assignment):
        parts.setdefault(c, set()).add(i)
    return nx.algorithms.community.modularity(
        G, list(parts.values()), weight="weight"
    )


class TestModularity:
    def test_singletons_on_triangle(self):
        g = EdgeList.from_arrays(3, [0, 1, 2], [1, 2, 0]).to_csr()
        # All singletons: in_c = 0, a_c = 2 for each; W = 6.
        q = modularity(g, np.arange(3))
        assert q == pytest.approx(0 - 3 * (2 / 6) ** 2)

    def test_all_in_one_community_is_zero(self):
        g = EdgeList.from_arrays(4, [0, 1, 2], [1, 2, 3]).to_csr()
        assert modularity(g, np.zeros(4)) == pytest.approx(0.0)

    def test_two_cliques_optimal(self, two_cliques):
        assignment = np.array([0] * 5 + [1] * 5)
        assert modularity(two_cliques, assignment) == pytest.approx(
            0.45238095, abs=1e-6
        )

    def test_matches_networkx_on_random_partitions(self, planted_blocks):
        rng = np.random.default_rng(0)
        for _ in range(5):
            assignment = rng.integers(0, 6, planted_blocks.num_vertices)
            assert modularity(planted_blocks, assignment) == pytest.approx(
                nx_modularity(planted_blocks, assignment), abs=1e-9
            )

    def test_matches_networkx_weighted(self):
        rng = np.random.default_rng(1)
        g = EdgeList.from_arrays(
            20,
            rng.integers(0, 20, 60),
            rng.integers(0, 20, 60),
            rng.uniform(0.5, 3.0, 60),
        ).to_csr()
        # NetworkX treats self loops differently; rebuild without them.
        eu, ev, ew = g.edge_array()
        keep = eu != ev
        g = EdgeList.from_arrays(20, eu[keep], ev[keep], ew[keep]).to_csr()
        assignment = rng.integers(0, 4, 20)
        assert modularity(g, assignment) == pytest.approx(
            nx_modularity(g, assignment), abs=1e-9
        )

    def test_empty_graph(self):
        assert modularity(CSRGraph.empty(5), np.zeros(5)) == 0.0

    def test_assignment_length_checked(self, two_cliques):
        with pytest.raises(ValueError):
            modularity(two_cliques, np.zeros(3))

    def test_arbitrary_label_values(self, two_cliques):
        a1 = np.array([0] * 5 + [1] * 5)
        a2 = np.array([42] * 5 + [-7] * 5)
        assert modularity(two_cliques, a1) == pytest.approx(
            modularity(two_cliques, a2)
        )


class TestCommunityAggregates:
    def test_two_cliques(self, two_cliques):
        ids, cin, atot = community_aggregates(
            two_cliques, np.array([0] * 5 + [1] * 5)
        )
        np.testing.assert_array_equal(ids, [0, 1])
        # Each clique: 10 intra edges counted twice = 20.
        np.testing.assert_allclose(cin, [20.0, 20.0])
        np.testing.assert_allclose(atot, [21.0, 21.0])

    def test_atot_sums_to_total_weight(self, planted_blocks):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 5, planted_blocks.num_vertices)
        _, _, atot = community_aggregates(planted_blocks, a)
        assert atot.sum() == pytest.approx(planted_blocks.total_weight)

    def test_self_loop_counted_once_in_cin(self):
        g = CSRGraph.from_edges(2, [0, 0], [0, 1], [3.0, 1.0])
        ids, cin, atot = community_aggregates(g, np.array([0, 1]))
        assert cin[0] == pytest.approx(3.0)


class TestMoveGain:
    def test_gain_reflects_actual_change(self, two_cliques):
        # Moving vertex 0 out of its clique into the other must hurt.
        assignment = np.array([0] * 5 + [1] * 5)
        assert move_gain(two_cliques, assignment, 0, 1) < 0

    def test_singleton_joining_clique_gains(self, two_cliques):
        assignment = np.array([9] + [0] * 4 + [1] * 5)
        assert move_gain(two_cliques, assignment, 0, 0) > 0

    def test_noop_move_zero(self, two_cliques):
        assignment = np.array([0] * 5 + [1] * 5)
        assert move_gain(two_cliques, assignment, 3, 0) == pytest.approx(0.0)
