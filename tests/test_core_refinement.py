"""Tests for the Grappolo heuristics and Leiden-style refinement.

Covers the two quality/speed knobs promoted into the distributed
pipeline — ``vertex_following`` (degree-one pre-coarsening) and
``refine="leiden"`` (post-phase splitting of internally disconnected
communities) — plus the serial connectivity checkers backing the
refinement guarantee and the bit-identity of every heuristic
composition across rank counts, transports, and checkpoint/resume.
"""

import numpy as np
import pytest

from repro.core import LouvainConfig, modularity, run_louvain
from repro.core.refine import refine_communities
from repro.graph import DistGraph, EdgeList
from repro.quality import (
    community_components,
    count_disconnected_communities,
    disconnected_communities,
)
from repro.resilience import FaultPlan
from repro.runtime import FREE, InjectedFault, RankFailedError, run_spmd

from .conftest import assert_valid_partition, random_graph


def _disconnected_fixture():
    """A 6-vertex graph whose community 0 is internally disconnected.

    Community 0 = {0, 1, 4, 5} holds only the edges 0-1 and 4-5: its
    two halves are bridged exclusively *through* community 2 = {2, 3}
    (edges 1-2 and 3-4), the exact defect Leiden refinement removes.
    """
    g = EdgeList.from_arrays(6, [0, 4, 2, 1, 3], [1, 5, 3, 2, 4]).to_csr()
    assignment = np.array([0, 0, 2, 2, 0, 0], dtype=np.int64)
    return g, assignment


def run_refine(g, assignment, nranks):
    """Drive :func:`refine_communities` over ``nranks`` simulated ranks
    and gather the refined per-vertex labels; also asserts the returned
    ghost values match a fresh exchange of the refined labels."""
    assignment = np.asarray(assignment, dtype=np.int64)

    def prog(comm):
        dg = DistGraph.distribute(comm, g, partition="even_vertex")
        plan = dg.build_ghost_plan(comm)
        local = assignment[dg.local_vertex_ids()].copy()
        ghost = dg.exchange_ghost_values(comm, plan, local, category="other")
        ref_local, ref_ghost = refine_communities(comm, dg, local, ghost)
        again = dg.exchange_ghost_values(
            comm, plan, ref_local, category="other"
        )
        assert np.array_equal(again, ref_ghost)
        return dg.local_vertex_ids().tolist(), ref_local.tolist()

    r = run_spmd(nranks, prog, machine=FREE, timeout=60.0)
    out = np.empty(g.num_vertices, dtype=np.int64)
    for ids, vals in r.values:
        out[np.asarray(ids, dtype=np.int64)] = vals
    return out


class TestConnectivityCheckers:
    def test_components_split_the_fixture(self):
        g, assignment = _disconnected_fixture()
        labels = community_components(g, assignment)
        # Halves of community 0 get distinct component labels; the
        # connected community 2 stays one component.
        assert labels[0] == labels[1]
        assert labels[4] == labels[5]
        assert labels[0] != labels[4]
        assert labels[2] == labels[3]

    def test_disconnected_list_names_the_culprit(self):
        g, assignment = _disconnected_fixture()
        assert disconnected_communities(g, assignment) == [0]
        assert count_disconnected_communities(g, assignment) == 1

    def test_connected_assignment_is_clean(self, two_cliques):
        assignment = np.array([0] * 5 + [5] * 5)
        assert disconnected_communities(two_cliques, assignment) == []
        assert count_disconnected_communities(two_cliques, assignment) == 0

    def test_every_singleton_is_connected(self, karate):
        assignment = np.arange(34)
        assert count_disconnected_communities(karate, assignment) == 0


class TestRefineUnit:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4])
    def test_splits_disconnected_community(self, nranks):
        g, assignment = _disconnected_fixture()
        refined = run_refine(g, assignment, nranks)
        # Each half becomes its min-member community; community 2 keeps
        # its id untouched (it was never split).
        np.testing.assert_array_equal(refined, [0, 0, 2, 2, 4, 4])
        assert count_disconnected_communities(g, refined) == 0

    def test_zero_edge_cut_never_lowers_modularity(self):
        g, assignment = _disconnected_fixture()
        refined = run_refine(g, assignment, 2)
        assert modularity(g, refined) >= modularity(g, assignment)

    def test_noop_on_connected_communities(self, two_cliques):
        assignment = np.array([0] * 5 + [5] * 5)
        refined = run_refine(two_cliques, assignment, 2)
        np.testing.assert_array_equal(refined, assignment)

    def test_propagation_respects_community_walls(self, path_graph):
        # A 12-vertex path split into two connected halves: labels must
        # not leak across the 5-6 community boundary.
        assignment = np.array([0] * 6 + [6] * 6, dtype=np.int64)
        refined = run_refine(path_graph, assignment, 2)
        np.testing.assert_array_equal(refined, assignment)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_layout_independent_on_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(rng, 40, 60)
        assignment = rng.integers(0, 40, size=40).astype(np.int64)
        outs = [run_refine(g, assignment, p) for p in (1, 2, 4)]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])
        assert count_disconnected_communities(g, outs[0]) == 0
        assert modularity(g, outs[0]) >= modularity(g, assignment) - 1e-12


class TestRefineEndToEnd:
    @pytest.mark.parametrize("nranks", [1, 4])
    def test_no_disconnected_communities_survive(
        self, karate, planted_blocks, two_cliques, nranks
    ):
        cfg = LouvainConfig(refine="leiden")
        for g in (karate, planted_blocks, two_cliques):
            r = run_louvain(g, nranks, cfg, machine=FREE)
            assert count_disconnected_communities(g, r.assignment) == 0
            assert_valid_partition(r.assignment, g.num_vertices)

    def test_quality_stays_in_range(self, karate, planted_blocks):
        cfg = LouvainConfig(refine="leiden")
        assert 0.38 <= run_louvain(karate, 4, cfg, machine=FREE).modularity
        assert run_louvain(planted_blocks, 4, cfg, machine=FREE).modularity > 0.8

    def test_random_graphs_end_clean(self):
        cfg = LouvainConfig(refine="leiden")
        for seed in range(3):
            g = random_graph(np.random.default_rng(seed), 50, 80)
            r = run_louvain(g, 3, cfg, machine=FREE)
            assert count_disconnected_communities(g, r.assignment) == 0

    def test_invalid_refine_rejected(self):
        with pytest.raises(ValueError, match="refine"):
            LouvainConfig(refine="louvain-prune")


class TestVertexFollowing:
    def test_star_collapses_to_one_community(self, star_graph):
        cfg = LouvainConfig(vertex_following=True)
        r = run_louvain(star_graph, 2, cfg, machine=FREE)
        assert r.num_communities == 1
        assert_valid_partition(r.assignment, star_graph.num_vertices)

    @pytest.mark.parametrize("graph_fixture", ["karate", "planted_blocks"])
    def test_layout_independent(self, graph_fixture, request):
        g = request.getfixturevalue(graph_fixture)
        cfg = LouvainConfig(vertex_following=True)
        runs = [run_louvain(g, p, cfg, machine=FREE) for p in (1, 2, 4, 8)]
        for r in runs[1:]:
            np.testing.assert_array_equal(runs[0].assignment, r.assignment)
            assert r.modularity == runs[0].modularity

    def test_quality_close_to_baseline(self, planted_blocks):
        base = run_louvain(planted_blocks, 4, machine=FREE)
        vf = run_louvain(
            planted_blocks, 4, LouvainConfig(vertex_following=True),
            machine=FREE,
        )
        assert vf.modularity >= base.modularity - 0.03

    def test_warm_start_skips_pre_coarsening(self, karate):
        # A warm start supplies labels for the *input* vertex ids; VF
        # must quietly stand down rather than invalidate them.
        cfg = LouvainConfig(vertex_following=True)
        warm = np.arange(34) // 2
        r = run_louvain(
            karate, 2, cfg, machine=FREE, initial_assignment=warm
        )
        assert_valid_partition(r.assignment, 34)
        assert 0.38 <= r.modularity <= 0.43


#: Heuristic compositions whose outcomes must be bit-identical across
#: every layout and transport (all are structurally deterministic).
_COMPOSITIONS = [
    {"vertex_following": True},
    {"refine": "leiden"},
    {"vertex_following": True, "refine": "leiden"},
    {
        "vertex_following": True,
        "refine": "leiden",
        "community_push_updates": True,
        "ghost_delta_updates": True,
    },
    {"vertex_following": True, "refine": "leiden", "repartition": "community"},
    {"refine": "leiden", "use_coloring": True},
    {"vertex_following": True, "use_coloring": True},
]


class TestCompositionBitIdentity:
    @pytest.mark.parametrize("overrides", _COMPOSITIONS)
    def test_identical_across_rank_counts(self, karate, overrides):
        cfg = LouvainConfig(**overrides)
        runs = [
            run_louvain(karate, p, cfg, machine=FREE, verify_schedule=True)
            for p in (1, 2, 4)
        ]
        for r in runs[1:]:
            np.testing.assert_array_equal(runs[0].assignment, r.assignment)
            assert r.modularity == runs[0].modularity

    def test_transport_invariance(self, planted_blocks):
        pull = LouvainConfig(vertex_following=True, refine="leiden")
        push = LouvainConfig(
            vertex_following=True,
            refine="leiden",
            community_push_updates=True,
            ghost_delta_updates=True,
        )
        a = run_louvain(
            planted_blocks, 4, pull, machine=FREE, verify_schedule=True
        )
        b = run_louvain(
            planted_blocks, 4, push, machine=FREE, verify_schedule=True
        )
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.modularity == b.modularity

    def test_checkpointing_does_not_perturb(self, tmp_path, planted_blocks):
        cfg = LouvainConfig(vertex_following=True, refine="leiden")
        ref = run_louvain(
            planted_blocks, 2, cfg, machine=FREE, verify_schedule=True
        )
        res = run_louvain(
            planted_blocks,
            2,
            cfg,
            machine=FREE,
            verify_schedule=True,
            checkpoint_dir=str(tmp_path / "ck"),
            checkpoint_every_iterations=2,
        )
        np.testing.assert_array_equal(ref.assignment, res.assignment)
        assert res.modularity == ref.modularity

    def test_crash_resume_bit_identical(self, tmp_path, planted_blocks):
        cfg = LouvainConfig(vertex_following=True, refine="leiden")
        ref = run_louvain(planted_blocks, 2, cfg, machine=FREE)
        d = str(tmp_path / "ck")
        with pytest.raises((RankFailedError, InjectedFault)):
            run_louvain(
                planted_blocks,
                2,
                cfg,
                machine=FREE,
                checkpoint_dir=d,
                checkpoint_every_iterations=1,
                fault_plan=FaultPlan(kills={1: 25}),
            )
        res = run_louvain(
            planted_blocks,
            2,
            cfg,
            machine=FREE,
            checkpoint_dir=d,
            resume=True,
            verify_schedule=True,
        )
        np.testing.assert_array_equal(ref.assignment, res.assignment)
        assert res.modularity == ref.modularity
