"""Integration tests: full pipelines across modules."""

import numpy as np
import pytest

from repro.core import (
    LouvainConfig,
    Variant,
    distributed_louvain,
    grappolo_louvain,
    louvain,
    modularity,
    run_louvain,
)
from repro.generators import generate_lfr, generate_ssca2, make_graph
from repro.graph import DistGraph, write_edgelist
from repro.quality import best_match_scores, normalized_mutual_information
from repro.runtime import CORI_HASWELL, FREE, run_spmd

from .conftest import assert_valid_partition


class TestFileToCommunitiesPipeline:
    """Binary file -> distributed ingest -> Louvain -> quality check."""

    @pytest.mark.parametrize("nranks", [1, 3, 4])
    def test_full_pipeline(self, tmp_path, nranks):
        lfr = generate_lfr(400, mu=0.1, min_community=20,
                           max_community=50, seed=1)
        path = str(tmp_path / "lfr.bin")
        write_edgelist(path, lfr.edges)

        def main(comm):
            dg = DistGraph.load_binary(comm, path, partition="even_edge")
            return distributed_louvain(comm, dg, LouvainConfig())

        spmd = run_spmd(nranks, main, machine=CORI_HASWELL, timeout=60.0)
        result = spmd.value
        assert_valid_partition(result.assignment, 400)
        scores = best_match_scores(lfr.community_of, result.assignment)
        assert scores.recall == 1.0
        assert scores.fscore > 0.8
        # I/O must be a small share of the modelled time (paper: 1-2%).
        fracs = spmd.trace.fraction_by_category()
        assert fracs.get("io", 0.0) < 0.25

    def test_shuffled_input_same_quality(self, tmp_path):
        g = generate_ssca2(300, 15, inter_clique_fraction=0.005, seed=2)
        rng = np.random.default_rng(0)
        path = str(tmp_path / "s.bin")
        write_edgelist(path, g.edges.permuted(rng))

        def main(comm):
            dg = DistGraph.load_binary(comm, path)
            return distributed_louvain(comm, dg)

        result = run_spmd(4, main, machine=FREE, timeout=60.0).value
        assert result.modularity > 0.9


class TestImplementationAgreement:
    """Serial, shared-memory and distributed must agree on quality."""

    @pytest.mark.parametrize(
        "name", ["channel", "com-orkut", "arabic-2005", "cnr"]
    )
    def test_three_implementations_agree(self, name):
        g = make_graph(name, scale="tiny")
        q_serial = louvain(g).modularity
        q_shared = grappolo_louvain(g).modularity
        q_dist = run_louvain(g, 4, machine=FREE).modularity
        # Paper: "the modularity difference was found to be under 1%"
        # between distributed and shared memory.  The serial sequential
        # sweep can land in a *worse* local optimum on banded/ring
        # structures, so it only provides a lower bound here.
        assert q_dist == pytest.approx(q_shared, abs=0.02)
        assert q_shared >= q_serial - 0.02
        assert q_dist >= q_serial - 0.02

    def test_partitions_structurally_similar(self, planted_blocks):
        serial = louvain(planted_blocks)
        dist = run_louvain(planted_blocks, 4, machine=FREE)
        nmi = normalized_mutual_information(
            serial.assignment, dist.assignment
        )
        assert nmi > 0.95

    def test_distributed_p1_matches_grappolo_plain(self, planted_blocks):
        # With one rank, the distributed algorithm degenerates to the
        # snapshot sweep — same trajectory as Grappolo without its
        # coloring/vertex-following heuristics.
        dist = run_louvain(planted_blocks, 1, machine=FREE)
        shared = grappolo_louvain(
            planted_blocks, coloring=False, vertex_following=False
        )
        assert dist.modularity == pytest.approx(shared.modularity, abs=1e-6)


class TestVariantBehaviourShapes:
    """Qualitative claims from the paper's evaluation."""

    def test_et_reduces_work_on_banded_graph(self):
        # §IV-B(b): ET savings are large on Channel-like (banded) inputs.
        g = make_graph("channel", scale="tiny")
        base = run_louvain(g, 4, machine=CORI_HASWELL)
        et = run_louvain(
            g, 4, LouvainConfig(variant=Variant.ET, alpha=0.75),
            machine=CORI_HASWELL,
        )
        base_work = base.trace.seconds_by_category()["compute"]
        et_work = et.trace.seconds_by_category()["compute"]
        assert et_work < base_work
        assert et.modularity > base.modularity - 0.05

    def test_etc_caps_iterations(self):
        g = make_graph("channel", scale="tiny")
        et = run_louvain(
            g, 4, LouvainConfig(variant=Variant.ET, alpha=0.75),
            machine=FREE,
        )
        etc = run_louvain(
            g, 4, LouvainConfig(variant=Variant.ETC, alpha=0.75),
            machine=FREE,
        )
        assert etc.modularity > 0.7 and et.modularity > 0.7

    def test_threshold_cycling_cuts_iterations_keeps_quality(self):
        g = make_graph("nlpkkt240", scale="tiny")
        base = run_louvain(g, 4, machine=FREE)
        tc = run_louvain(
            g, 4, LouvainConfig(variant=Variant.THRESHOLD_CYCLING),
            machine=FREE,
        )
        # <3% modularity loss (paper §V-C(a)).
        assert tc.modularity > base.modularity * 0.97

    def test_strong_scaling_time_decreases_then_flattens(self):
        g = make_graph("soc-friendster", scale="tiny")
        times = [
            run_louvain(g, p, machine=CORI_HASWELL).elapsed
            for p in (1, 2, 4, 8)
        ]
        # Speedup from 1 -> 4 ranks must be real.
        assert times[2] < times[0]

    def test_weak_scaling_flat_shape(self):
        # Fig. 4: near-constant time with work/process fixed.
        from repro.generators import weak_scaling_series

        series = weak_scaling_series(2500, [1, 2, 4], max_clique_size=20,
                                     inter_clique_fraction=0.003)
        times = []
        for p, g in series:
            csr = g.edges.to_csr()
            times.append(run_louvain(csr, p, machine=CORI_HASWELL).elapsed)
        # Within 4x across the series (constant in the paper's scale; at
        # this size the p=1 point has no communication at all, so some
        # growth from 1 -> 2 ranks is inherent to the model).
        assert max(times) / min(times) < 4.0


class TestQualityAssessmentFeature:
    def test_lfr_ground_truth_comparison_distributed(self):
        # The §V-D pipeline: distributed Louvain + F-score vs LFR truth.
        lfr = generate_lfr(400, mu=0.1, min_community=20,
                           max_community=50, seed=7)
        g = lfr.edges.to_csr()
        r = run_louvain(
            g, 4, LouvainConfig(track_assignments=True), machine=FREE
        )
        scores = best_match_scores(lfr.community_of, r.assignment)
        assert scores.recall == 1.0
        assert scores.fscore > 0.8
        assert r.phase_assignments is not None
        # Every phase's gathered assignment covers the original graph.
        for pa in r.phase_assignments:
            assert len(pa) == 400
