"""Property-based tests on the graph substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import DistGraph, EdgeList, even_edge, even_vertex
from repro.runtime import FREE, run_spmd

from .conftest import random_graph

COMMON = dict(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)

graph_params = st.tuples(
    st.integers(2, 40),        # n
    st.integers(0, 120),       # m raw records
    st.integers(0, 2**16),     # seed
)


@given(params=graph_params, weighted=st.booleans())
@settings(**COMMON)
def test_csr_symmetry_and_weight_invariants(params, weighted):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m, weighted)
    g.validate()
    # total weight = sum of degrees, always.
    assert g.total_weight == pytest.approx(g.degrees().sum())
    # nnz = 2 * (non-loop edges) + loops.
    loops = int(np.count_nonzero(g.self_loop_weights() > 0))
    assert g.nnz >= loops
    assert (g.nnz - loops) % 2 == 0


@given(params=graph_params)
@settings(**COMMON)
def test_edgelist_csr_roundtrip(params):
    n, m, seed = params
    rng = np.random.default_rng(seed)
    el = EdgeList.from_arrays(
        n, rng.integers(0, n, m), rng.integers(0, n, m)
    )
    g = el.to_csr()
    el2 = EdgeList.from_csr(g)
    assert el2.num_edges == el.num_edges
    assert el2.total_weight == pytest.approx(el.total_weight)
    assert g.total_weight == pytest.approx(el.total_weight)


@given(n=st.integers(0, 200), p=st.integers(1, 17))
@settings(**COMMON)
def test_even_vertex_partition_properties(n, p):
    off = even_vertex(n, p)
    counts = np.diff(off)
    assert counts.sum() == n
    assert counts.max() - counts.min() <= 1 if n else True
    assert np.all(counts >= 0)


@given(params=graph_params, p=st.integers(1, 8))
@settings(**COMMON)
def test_even_edge_partition_covers(params, p):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m)
    off = even_edge(np.diff(g.index), p)
    assert off[0] == 0 and off[-1] == n
    assert np.all(np.diff(off) >= 0)


@given(params=graph_params, p=st.integers(1, 5))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_distribution_preserves_graph(params, p):
    n, m, seed = params
    g = random_graph(np.random.default_rng(seed), n, m)

    def prog(comm):
        dg = DistGraph.distribute(comm, g)
        plan = dg.build_ghost_plan(comm)
        # Ghosts are exactly the referenced non-owned vertices.
        mine = (dg.edges >= dg.vbegin) & (dg.edges < dg.vend)
        refs = np.unique(dg.edges[~mine])
        ok = np.array_equal(refs, plan.ghost_ids)
        return ok, float(dg.weights.sum()), dg.num_local

    r = run_spmd(p, prog, machine=FREE, timeout=15.0)
    assert all(v[0] for v in r.values)
    assert sum(v[1] for v in r.values) == pytest.approx(g.total_weight)
    assert sum(v[2] for v in r.values) == n
