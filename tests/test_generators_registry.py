"""Unit tests for the dataset registry of paper-input stand-ins."""

import pytest

from repro.generators import (
    DATASETS,
    SCALES,
    TABLE2_NAMES,
    dataset,
    make_graph,
)


class TestRegistryContents:
    def test_all_table2_graphs_present(self):
        assert len(TABLE2_NAMES) == 12
        for name in TABLE2_NAMES:
            assert name in DATASETS

    def test_table1_inputs_present(self):
        assert "cnr" in DATASETS
        assert "channel" in DATASETS

    def test_ssca2_present(self):
        assert "ssca2" in DATASETS

    def test_specs_carry_paper_metadata(self):
        spec = dataset("soc-friendster")
        assert spec.paper_edges == "1.8B"
        assert spec.paper_modularity == pytest.approx(0.624)
        assert "flagship" in spec.description

    def test_structure_classes(self):
        assert dataset("channel").structure == "mesh"
        assert dataset("uk-2007").structure == "web"
        assert dataset("twitter-2010").structure == "social"
        assert dataset("cnr").structure == "small-world"


class TestGeneration:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_graph("nope")
        with pytest.raises(KeyError):
            dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(KeyError, match="unknown scale"):
            dataset("channel").generate(scale="huge")

    def test_scales_ordered(self):
        assert SCALES["tiny"] < SCALES["small"] < SCALES["medium"]

    def test_tiny_smaller_than_small(self):
        t = make_graph("channel", scale="tiny")
        s = make_graph("channel", scale="small")
        assert t.num_vertices < s.num_vertices

    def test_deterministic_per_seed(self):
        a = make_graph("com-orkut", seed=3)
        b = make_graph("com-orkut", seed=3)
        assert a.num_edges == b.num_edges
        assert (a.edges == b.edges).all()

    def test_different_seeds_differ(self):
        a = make_graph("com-orkut", seed=0)
        b = make_graph("com-orkut", seed=1)
        assert a.num_edges != b.num_edges or not (a.edges == b.edges).all()

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_every_dataset_generates_valid_graph(self, name):
        g = make_graph(name, scale="tiny")
        assert g.num_vertices > 0
        assert g.num_edges > 0
        assert g.total_weight > 0

    def test_size_ordering_roughly_preserved(self):
        # Table II is edge-ascending; stand-ins keep the ordering loosely
        # (within structure classes at least the endpoints hold).
        first = make_graph(TABLE2_NAMES[0], scale="small")
        last = make_graph(TABLE2_NAMES[-1], scale="small")
        assert last.num_vertices > first.num_vertices
