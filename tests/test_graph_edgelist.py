"""Unit tests for EdgeList canonicalisation."""

import numpy as np
import pytest

from repro.graph import EdgeList


class TestFromArrays:
    def test_canonical_orientation(self):
        el = EdgeList.from_arrays(4, [3, 1], [0, 2])
        assert list(el.u) == [0, 1]
        assert list(el.v) == [3, 2]

    def test_dedup_sums_weights(self):
        el = EdgeList.from_arrays(3, [0, 1, 0], [1, 0, 1], [1.0, 2.0, 4.0])
        assert el.num_edges == 1
        assert el.w[0] == pytest.approx(7.0)

    def test_dedup_disabled(self):
        el = EdgeList.from_arrays(3, [0, 1], [1, 0], dedup=False)
        assert el.num_edges == 2

    def test_default_unit_weights(self):
        el = EdgeList.from_arrays(3, [0], [1])
        assert el.w[0] == 1.0

    def test_total_weight_counts_loops_once(self):
        el = EdgeList.from_arrays(2, [0, 1], [0, 0], [3.0, 2.0])
        # loop (0,0,3) once + edge (0,1,2) twice
        assert el.total_weight == pytest.approx(3.0 + 4.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            EdgeList.from_arrays(2, [0], [2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EdgeList.from_arrays(2, [0], [-1])

    def test_empty(self):
        el = EdgeList.from_arrays(3, [], [])
        assert el.num_edges == 0
        assert el.total_weight == 0.0


class TestConversions:
    def test_roundtrip_csr(self):
        el = EdgeList.from_arrays(
            5, [0, 1, 2, 0], [1, 2, 3, 0], [1.0, 2.0, 3.0, 0.5]
        )
        g = el.to_csr()
        el2 = EdgeList.from_csr(g)
        assert sorted(zip(el.u, el.v, el.w)) == sorted(
            zip(el2.u, el2.v, el2.w)
        )

    def test_to_csr_total_weight_matches(self):
        el = EdgeList.from_arrays(6, [0, 1, 2, 3], [1, 2, 3, 4])
        assert el.to_csr().total_weight == pytest.approx(el.total_weight)

    def test_permuted_preserves_multiset(self):
        el = EdgeList.from_arrays(5, [0, 1, 2], [1, 2, 3])
        rng = np.random.default_rng(0)
        shuffled = el.permuted(rng)
        assert sorted(zip(shuffled.u, shuffled.v)) == sorted(zip(el.u, el.v))
