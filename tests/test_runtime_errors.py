"""Error-path coverage for the simulated runtime.

Exercises the messages and secondary-failure handling that the dynamic
analysis layer (docs/ANALYSIS.md) relies on: collective-mismatch
localization, schedule-hash divergence, deadlock audits on timeout, and
RankAborted suppression in RankFailedError.causes.
"""
# spmdlint: skip-file — every worker below deliberately diverges
# (mismatched collectives, rank-local raises, recv cycles) to exercise
# the runtime verifier; the static rules would flag all of them.

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import run_spmd
from repro.runtime.errors import (
    CollectiveMismatchError,
    CommTimeoutError,
    RankAborted,
    RankFailedError,
)


def first_cause(excinfo) -> BaseException:
    err = excinfo.value
    return err.causes[err.rank]


class TestCollectiveMismatch:
    def test_op_name_mismatch_names_both_ops_and_the_rank(self):
        def prog(comm):
            if comm.rank == 0:
                comm.allreduce(1.0)
            else:
                comm.barrier()

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, prog)
        cause = first_cause(excinfo)
        assert isinstance(cause, CollectiveMismatchError)
        msg = str(cause)
        assert "'allreduce'" in msg and "'barrier'" in msg
        assert "collective op #0" in msg
        assert "rank" in msg

    def test_schedule_verifier_pinpoints_dtype_divergence(self):
        # Same op name on every rank, but rank 1 deposits an int where
        # the others deposit a float64 array: only the debug verifier
        # can see this, and it must localize to op index and rank.
        def prog(comm):
            comm.barrier()  # op #0, identical everywhere
            if comm.rank == 1:
                return comm.allreduce(3)
            return comm.allreduce(np.ones(4, dtype=np.float64))

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, prog, verify_schedule=True)
        cause = first_cause(excinfo)
        assert isinstance(cause, CollectiveMismatchError)
        msg = str(cause)
        assert "divergence at op #1" in msg
        assert "ndarray[float64]" in msg
        assert "allreduce|int" in msg
        assert "rank 0" in msg and "rank 1" in msg

    def test_verifier_silent_on_matching_schedules(self):
        def prog(comm):
            comm.barrier()
            total = comm.allreduce(float(comm.rank))
            return comm.allgather([comm.rank] * comm.rank)  # ragged: ok

        out = run_spmd(3, prog, verify_schedule=True)
        assert out.values[0] == [[], [1], [2, 2]]

    def test_env_var_enables_verifier(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_SCHEDULE", "1")

        def prog(comm):
            if comm.rank == 0:
                return comm.allreduce(np.float64(1.0))
            return comm.allreduce([1.0])

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, prog)
        assert "divergence at op #0" in str(first_cause(excinfo))


class TestDeadlockAudit:
    def test_recv_cycle_is_reported(self):
        # 0 waits on 1 and 1 waits on 0: a true wait cycle.
        def prog(comm):
            peer = 1 - comm.rank
            return comm.recv(source=peer, tag=0)

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, prog, timeout=0.3)
        cause = first_cause(excinfo)
        assert isinstance(cause, CommTimeoutError)
        msg = str(cause)
        assert "deadlock audit (wait-for graph):" in msg
        assert "wait cycle: 0 -> 1 -> 0" in msg

    def test_collective_straggler_names_missing_ranks(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()  # rank 1 never arrives
            return None

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, prog, timeout=0.3)
        msg = str(first_cause(excinfo))
        assert "blocked in collective 'barrier'" in msg
        assert "waiting for ranks [1]" in msg
        assert "rank 1: running (not blocked in communication)" in msg
        assert "no wait cycle detected" in msg


class TestRankAbortedSuppression:
    def test_causes_contain_only_the_primary_failure(self):
        # Rank 0 raises; ranks 1 and 2 are parked in a collective and
        # observe RankAborted, which must not appear as a cause.
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("primary failure")
            comm.barrier()

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(3, prog)
        err = excinfo.value
        assert set(err.causes) == {0}
        assert isinstance(err.causes[0], ValueError)
        assert err.rank == 0
        assert "first failure on rank 0" in str(err)
        assert "ValueError" in str(err)

    def test_multiple_primary_failures_all_reported(self):
        def prog(comm):
            raise RuntimeError(f"rank {comm.rank} failed")

        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(2, prog)
        err = excinfo.value
        assert set(err.causes) == {0, 1}
        assert not any(
            isinstance(c, RankAborted) for c in err.causes.values()
        )
